"""The differential verification subsystem (``repro.verify``).

Three layers of coverage:

* the harness itself -- tolerances, scenario round trips, fuzzer
  determinism, oracle registry, and (crucially) that the oracles *detect*
  injected kernel bugs and corrupted reports rather than vacuously passing;
* the committed corpus -- every scenario in ``corpus.json`` runs every
  applicable oracle on one shared session (this is the acceptance gate:
  all backends, all optimizer x sizer combinations, explicit tolerances);
* a fresh fuzz batch per run -- new random scenarios every execution
  (``REPRO_FUZZ_SEED`` pins the batch when a failure needs replaying; the
  failing seed is always printed).
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.api.session import Session
from repro.api.spec import PipelineSpec
from repro.verify import (
    Scenario,
    ScenarioFuzzer,
    Tolerance,
    available_oracles,
    builtin_corpus,
    check_delay_report,
    check_design_report,
    get_oracle,
    oracles_for,
    register_oracle,
    run_conformance,
)

pytestmark = pytest.mark.conformance

CORPUS = builtin_corpus()


@pytest.fixture(scope="module")
def session() -> Session:
    """One session shared by every corpus scenario (exercises cache keys)."""
    return Session()


@pytest.fixture(scope="module")
def cheap_study_scenario() -> Scenario:
    """The smallest committed analysis scenario, for harness-level tests."""
    return next(s for s in CORPUS if s.name == "chain-1x6-single-stage-mc")


# ----------------------------------------------------------------------
# Tolerance policies
# ----------------------------------------------------------------------
class TestTolerance:
    def test_excess_semantics(self):
        tol = Tolerance(rel=0.1, abs=0.0)
        assert tol.excess(1.05, 1.0) == pytest.approx(0.5)
        assert tol.check(1.05, 1.0)
        assert not tol.check(1.2, 1.0)

    def test_abs_floor_keeps_zero_expected_checkable(self):
        tol = Tolerance(rel=0.1, abs=0.01)
        assert tol.check(0.005, 0.0)
        assert not tol.check(0.05, 0.0)

    def test_scaled_floor_tracks_the_data_magnitude(self):
        # Delays of order 1e-10 s: the floor must scale down with them, not
        # sit at an absolute 1e-12 that would mask real kernel divergence.
        tol = Tolerance.exact()
        expected = np.full(4, 1e-10)
        assert not tol.check(expected * (1.0 + 1e-9), expected)
        assert tol.check(expected * (1.0 + 1e-13), expected)

    def test_shape_mismatch_and_nonfinite_fail(self):
        tol = Tolerance(rel=0.1)
        assert tol.excess(np.ones(3), np.ones(4)) == float("inf")
        assert tol.excess(np.nan, 1.0) == float("inf")

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError, match="band"):
            Tolerance(rel=0.0, abs=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            Tolerance(rel=-0.1)

    def test_yield_points(self):
        tol = Tolerance.yield_points(5.0)
        assert tol.check(0.90, 0.94)
        assert not tol.check(0.80, 0.94)


# ----------------------------------------------------------------------
# Scenarios, corpus and fuzzer
# ----------------------------------------------------------------------
class TestScenarios:
    def test_exactly_one_spec_required(self, cheap_study_scenario):
        with pytest.raises(ValueError, match="exactly one"):
            Scenario(name="bad")
        with pytest.raises(ValueError, match="exactly one"):
            Scenario(
                name="bad",
                study=cheap_study_scenario.study,
                design=next(s.design for s in CORPUS if s.design is not None),
            )

    @pytest.mark.parametrize("scenario", CORPUS, ids=[s.name for s in CORPUS])
    def test_corpus_round_trips_through_json(self, scenario):
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_corpus_meets_the_coverage_floor(self):
        assert len(CORPUS) >= 25
        names = [s.name for s in CORPUS]
        assert len(set(names)) == len(names)
        backends = {s.study.analysis.backend for s in CORPUS if s.study is not None}
        assert backends == {"montecarlo", "analytic", "ssta"}
        combos = {
            (s.design.design.optimizer, s.design.design.sizer)
            for s in CORPUS
            if s.design is not None
        }
        assert combos == {
            (optimizer, sizer)
            for optimizer in ("balanced", "redistribute", "global")
            for sizer in ("lagrangian", "greedy")
        }

    def test_random_logic_pipeline_kind(self):
        spec = PipelineSpec(
            kind="random_logic",
            n_stages=2,
            logic_depth=5,
            options={"n_gates": 20, "n_inputs": 4, "n_outputs": 2, "seed": 9},
        )
        pipeline = spec.build()
        assert pipeline.n_stages == 2
        # Per-stage seeds differ, so the two stages are structurally distinct.
        fanins = [stage.netlist.fanin_indices() for stage in pipeline.stages]
        assert fanins[0] != fanins[1]
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_fuzzer_is_deterministic_per_seed(self):
        first = ScenarioFuzzer(42).scenarios(4, 2)
        second = ScenarioFuzzer(42).scenarios(4, 2)
        assert first == second
        other = ScenarioFuzzer(43).scenarios(4, 2)
        assert [s.name for s in first] != [s.name for s in other] or first != other

    def test_fuzzed_design_scenarios_are_validated(self):
        scenario = ScenarioFuzzer(5).design_scenario()
        assert scenario.kind == "design"
        assert scenario.design.validation is not None
        assert scenario.design.validation.backend == "montecarlo"


# ----------------------------------------------------------------------
# Oracle registry and failure detection
# ----------------------------------------------------------------------
class TestOracles:
    def test_all_builtin_oracles_registered(self):
        expected = {
            "sta-forward", "sta-backward", "ssta-propagation",
            "ssta-correlation", "clark-max", "analytic-yield",
            "backend-agreement", "report-invariants", "design-invariants",
            "design-isolation", "optimizer-conformance",
        }
        assert expected <= set(available_oracles())

    def test_unknown_oracle_error_names_alternatives(self):
        with pytest.raises(KeyError, match="sta-forward"):
            get_oracle("spice-diff")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_oracle(get_oracle("sta-forward"))

    def test_kind_dispatch(self):
        study_names = {oracle.name for oracle in oracles_for("study")}
        design_names = {oracle.name for oracle in oracles_for("design")}
        assert "design-isolation" not in study_names
        assert "analytic-yield" not in design_names
        assert "sta-forward" in study_names and "sta-forward" in design_names

    def test_sta_oracle_detects_an_injected_kernel_bug(
        self, session, cheap_study_scenario, monkeypatch
    ):
        import repro.verify.oracles as oracles_module

        original = oracles_module.arrival_times

        def buggy(netlist, gate_delays, out=None):
            return original(netlist, gate_delays, out=out) * (1.0 + 1e-9)

        monkeypatch.setattr(oracles_module, "arrival_times", buggy)
        check = get_oracle("sta-forward").check(session, cheap_study_scenario)
        assert not check.passed
        assert check.excess > 1.0

    def test_oracle_crash_is_a_failure_not_an_abort(
        self, cheap_study_scenario, monkeypatch
    ):
        import repro.verify.oracles as oracles_module

        @dataclasses.dataclass
        class ExplodingOracle:
            name: str = "test-exploding"
            kinds: tuple = ("study",)
            tolerance: Tolerance = dataclasses.field(default_factory=Tolerance.exact)

            def check(self, session, scenario):
                raise RuntimeError("boom")

        # setitem (not register_oracle) so the registry is restored at teardown.
        monkeypatch.setitem(
            oracles_module._ORACLES, "test-exploding", ExplodingOracle()
        )
        report = run_conformance(
            [cheap_study_scenario], oracles=["test-exploding"]
        )
        assert not report.passed
        (failure,) = report.failures
        assert "boom" in failure.detail and failure.excess == float("inf")

    def test_tolerance_override_tightens_a_run(self, session, cheap_study_scenario):
        report = run_conformance(
            [cheap_study_scenario],
            session=session,
            oracles=["analytic-yield"],
            tolerances={"analytic-yield": Tolerance(rel=0.0, abs=1e-15)},
        )
        assert not report.passed


# ----------------------------------------------------------------------
# Invariant checkers catch corrupted reports
# ----------------------------------------------------------------------
class TestInvariantDetection:
    @pytest.fixture(scope="class")
    def clean_report(self, session, cheap_study_scenario):
        return session.analyze(cheap_study_scenario.study)

    def test_clean_report_has_no_violations(self, clean_report):
        assert check_delay_report(clean_report) == []

    def test_pipeline_mean_below_stage_mean_caught(self, clean_report):
        bad = dataclasses.replace(
            clean_report,
            pipeline_mean=clean_report.pipeline_mean * 0.5,
            samples=None,
        )
        assert any("stage mean" in v for v in check_delay_report(bad))

    def test_malformed_correlation_caught(self, clean_report):
        n = clean_report.n_stages
        bad = dataclasses.replace(
            clean_report,
            correlation=tuple(tuple(2.0 for _ in range(n)) for _ in range(n)),
        )
        assert check_delay_report(bad)

    def test_negative_sigma_caught(self, clean_report):
        bad = dataclasses.replace(clean_report, pipeline_std=-1e-12, samples=None)
        assert any("sigma" in v for v in check_delay_report(bad))

    def test_corrupted_design_report_caught(self, session):
        scenario = next(s for s in CORPUS if s.name == "design-balanced-greedy")
        report = session.design(scenario.design)
        assert check_design_report(report) == []
        bad = dataclasses.replace(report, total_area=report.total_area * 2.0)
        assert any("total_area" in v for v in check_design_report(bad))
        bad_yield = dataclasses.replace(report, predicted_yield=1.5)
        assert any("predicted_yield" in v for v in check_design_report(bad_yield))


# ----------------------------------------------------------------------
# The acceptance gate: corpus + fresh fuzz
# ----------------------------------------------------------------------
class TestConformanceRuns:
    @pytest.mark.parametrize("scenario", CORPUS, ids=[s.name for s in CORPUS])
    def test_corpus_scenario_conforms(self, session, scenario):
        report = run_conformance([scenario], session=session)
        assert report.passed, "\n" + report.format(failures_only=True)

    def test_fresh_fuzzed_scenarios_conform(self):
        """New random scenarios every run; REPRO_FUZZ_SEED replays a batch."""
        env_seed = os.environ.get("REPRO_FUZZ_SEED")
        seed = int(env_seed) if env_seed else None
        report = run_conformance(scenarios=[], fuzz=9, seed=seed)
        assert report.fuzz_seed is not None
        assert report.passed, (
            f"\nreplay with REPRO_FUZZ_SEED={report.fuzz_seed}\n"
            + report.format(failures_only=True)
        )

    def test_report_formatting_and_summary(self, session, cheap_study_scenario):
        report = run_conformance([cheap_study_scenario], session=session)
        summary = report.summary()
        assert summary["scenarios"] == 1
        assert summary["failures"] == 0
        text = report.format()
        assert cheap_study_scenario.name in text
        assert "conformance:" in text
