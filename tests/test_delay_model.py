"""Tests for repro.timing.delay_model."""

import numpy as np
import pytest

from repro.circuit.generators import inverter_chain
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel


class TestNominalDelays:
    def test_shape_and_positivity(self, technology, small_chain):
        model = GateDelayModel(technology)
        delays = model.nominal_delays(small_chain)
        assert delays.shape == (small_chain.n_gates,)
        assert np.all(delays > 0.0)

    def test_chain_interior_delays_identical(self, technology):
        chain = inverter_chain(5)
        model = GateDelayModel(technology)
        delays = model.nominal_delays(chain)
        # All interior inverters drive one identical inverter, so their
        # delays must match; only the last gate (default output load) differs.
        assert np.allclose(delays[:-1], delays[0])

    def test_upsizing_a_gate_reduces_its_own_delay(self, technology, small_chain):
        model = GateDelayModel(technology)
        sizes = small_chain.sizes()
        base = model.nominal_delays(small_chain, sizes)
        sizes_up = sizes.copy()
        sizes_up[-1] = 4.0
        fast = model.nominal_delays(small_chain, sizes_up)
        assert fast[-1] < base[-1]

    def test_upsizing_a_gate_slows_its_driver(self, technology, small_chain):
        model = GateDelayModel(technology)
        sizes = small_chain.sizes()
        base = model.nominal_delays(small_chain, sizes)
        sizes_up = sizes.copy()
        sizes_up[3] = 4.0
        after = model.nominal_delays(small_chain, sizes_up)
        assert after[2] > base[2]

    def test_rejects_nonpositive_sizes(self, technology, small_chain):
        model = GateDelayModel(technology)
        with pytest.raises(ValueError):
            model.nominal_delays(small_chain, np.zeros(small_chain.n_gates))

    def test_fo1_inverter_delay_in_expected_range(self, technology):
        chain = inverter_chain(3)
        model = GateDelayModel(technology)
        delays = model.nominal_delays(chain)
        # A fanout-of-1 inverter in a 70 nm-like node is of order 10 ps.
        assert 3e-12 < delays[0] < 40e-12


class TestDriveFactors:
    def test_nominal_is_unity(self, technology):
        model = GateDelayModel(technology)
        assert model.drive_factors(np.array([technology.vth0]))[0] == pytest.approx(1.0)

    def test_monotonic_in_vth(self, technology):
        model = GateDelayModel(technology)
        vth = np.array([0.15, 0.2, 0.25, 0.3])
        factors = model.drive_factors(vth)
        assert np.all(np.diff(factors) > 0.0)

    def test_rejects_vth_at_supply(self, technology):
        model = GateDelayModel(technology)
        with pytest.raises(ValueError):
            model.drive_factors(np.array([technology.vdd]))

    def test_length_scaling(self, technology):
        model = GateDelayModel(technology)
        factor = model.drive_factors(
            np.array([technology.vth0]), np.array([1.3 * technology.lmin])
        )
        assert factor[0] == pytest.approx(1.3)


class TestDelaySamples:
    def test_shape(self, technology, small_chain, rng):
        model = GateDelayModel(technology)
        vth = np.full((10, small_chain.n_gates), technology.vth0)
        samples = model.delay_samples(small_chain, vth)
        assert samples.shape == (10, small_chain.n_gates)

    def test_nominal_samples_match_nominal_delays(self, technology, small_chain):
        model = GateDelayModel(technology)
        vth = np.full((3, small_chain.n_gates), technology.vth0)
        samples = model.delay_samples(small_chain, vth)
        assert np.allclose(samples, model.nominal_delays(small_chain)[None, :])

    def test_shape_mismatch_rejected(self, technology, small_chain):
        model = GateDelayModel(technology)
        with pytest.raises(ValueError):
            model.delay_samples(small_chain, np.zeros((5, 3)))


class TestSensitivities:
    def test_components_present_and_positive(self, technology, small_chain):
        model = GateDelayModel(technology)
        coeffs = model.sensitivity_coefficients(small_chain, VariationModel.combined())
        for key in ("mean", "sigma_inter", "sigma_systematic", "sigma_random"):
            assert np.all(coeffs[key] >= 0.0)
        assert np.all(coeffs["mean"] > 0.0)

    def test_zero_variation_gives_zero_sigmas(self, technology, small_chain):
        model = GateDelayModel(technology)
        silent = VariationModel(
            sigma_vth_inter=0.0,
            sigma_vth_random=0.0,
            sigma_vth_systematic=0.0,
            sigma_l_inter=0.0,
            sigma_l_systematic=0.0,
        )
        coeffs = model.sensitivity_coefficients(small_chain, silent)
        assert np.all(coeffs["sigma_inter"] == 0.0)
        assert np.all(coeffs["sigma_random"] == 0.0)
        assert np.all(coeffs["sigma_systematic"] == 0.0)

    def test_random_sigma_shrinks_with_size(self, technology, small_chain):
        model = GateDelayModel(technology)
        variation = VariationModel.intra_random_only(0.03)
        base = model.sensitivity_coefficients(small_chain, variation)
        big = model.sensitivity_coefficients(
            small_chain, variation, sizes=4.0 * small_chain.sizes()
        )
        # Relative random sigma (sigma / mean) falls as 1/sqrt(size).
        relative_base = base["sigma_random"] / base["mean"]
        relative_big = big["sigma_random"] / big["mean"]
        assert np.allclose(relative_big, relative_base / 2.0, rtol=1e-6)

    def test_inter_sigma_is_quadrature_of_parts(self, technology, small_chain):
        model = GateDelayModel(technology)
        coeffs = model.sensitivity_coefficients(small_chain, VariationModel.combined())
        expected = np.sqrt(
            coeffs["sigma_vth_inter"] ** 2 + coeffs["sigma_l_inter"] ** 2
        )
        assert np.allclose(coeffs["sigma_inter"], expected)
