"""Tests for repro.core.design_space (paper section 2.5, Fig. 4)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.design_space import DesignSpace, GateDelayCharacteristics
from repro.core.stage_delay import StageDelayDistribution
from repro.core.yield_model import yield_independent


@pytest.fixture
def space():
    return DesignSpace(target_delay=200e-12, target_yield=0.9)


@pytest.fixture
def gates():
    return GateDelayCharacteristics(
        mu_min=12e-12, sigma_min=1.2e-12, mu_max=6e-12, sigma_max=0.5e-12
    )


class TestBounds:
    def test_relaxed_bound_at_zero_sigma_is_target(self, space):
        assert space.relaxed_upper_bound(0.0) == pytest.approx(200e-12)

    def test_relaxed_bound_decreases_with_sigma(self, space):
        sigmas = np.linspace(0.0, 30e-12, 10)
        bounds = space.relaxed_upper_bound(sigmas)
        assert np.all(np.diff(bounds) < 0.0)

    def test_equality_bound_tighter_than_relaxed(self, space):
        sigma = 10e-12
        assert space.equality_bound(sigma, n_stages=5) < space.relaxed_upper_bound(sigma)

    def test_equality_bound_tightens_with_stage_count(self, space):
        """The paper's Fig. 4: the n2 > n1 bound lies below the n1 bound."""
        sigma = 10e-12
        assert space.equality_bound(sigma, 8) < space.equality_bound(sigma, 2)

    def test_equality_bound_matches_eq12(self, space):
        sigma = 8e-12
        n_stages = 4
        stage_yield = 0.9 ** (1.0 / n_stages)
        expected = 200e-12 - sigma * float(norm.ppf(stage_yield))
        assert space.equality_bound(sigma, n_stages) == pytest.approx(expected)

    def test_mean_upper_bound_eq10(self, space):
        assert space.mean_upper_bound(5e-12) == pytest.approx(
            200e-12 - 5e-12 * float(norm.ppf(0.9))
        )

    def test_feasibility_predicates(self, space):
        assert space.satisfies_relaxed_bound(150e-12, 5e-12)
        assert not space.satisfies_relaxed_bound(210e-12, 5e-12)
        assert space.satisfies_equality_bound(150e-12, 5e-12, 4)
        assert not space.satisfies_equality_bound(199e-12, 20e-12, 4)

    def test_point_on_equality_bound_achieves_target_yield(self, space):
        """A pipeline of N stages sitting exactly on the eq. 12 bound yields Y."""
        n_stages = 4
        sigma = 6e-12
        mu = space.equality_bound(sigma, n_stages)
        stages = [StageDelayDistribution(mu, sigma) for _ in range(n_stages)]
        assert yield_independent(stages, 200e-12) == pytest.approx(0.9, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpace(0.0, 0.9)
        with pytest.raises(ValueError):
            DesignSpace(1.0, 1.5)
        space = DesignSpace(1.0, 0.9)
        with pytest.raises(ValueError):
            space.mean_upper_bound(-1.0)
        with pytest.raises(ValueError):
            space.equality_bound(1.0, 0)


class TestRealizableBounds:
    def test_realizable_sigma_eq13(self, space):
        sigma = space.realizable_sigma(120e-12, gate_mu=12e-12, gate_sigma=1.2e-12)
        # 10 gates -> sigma = sqrt(10) * 1.2 ps
        assert sigma == pytest.approx(np.sqrt(10) * 1.2e-12)

    def test_realizable_band_ordering(self, space, gates):
        mu = 100e-12
        lower, upper = space.realizable_bounds(mu, gates)
        assert lower < upper

    def test_minimum_realizable_point(self, space, gates):
        mu, sigma = space.minimum_realizable_point(gates, min_logic_depth=4)
        assert mu == pytest.approx(4 * gates.mu_max)
        assert sigma == pytest.approx(2.0 * gates.sigma_max)

    def test_gate_characteristics_validation(self):
        with pytest.raises(ValueError):
            GateDelayCharacteristics(mu_min=1.0, sigma_min=0.1, mu_max=2.0, sigma_max=0.1)
        with pytest.raises(ValueError):
            GateDelayCharacteristics(mu_min=0.0, sigma_min=0.1, mu_max=0.0, sigma_max=0.1)

    def test_realizable_sigma_validation(self, space):
        with pytest.raises(ValueError):
            space.realizable_sigma(1.0, gate_mu=0.0, gate_sigma=0.1)


class TestRegion:
    def test_region_shapes(self, space, gates):
        region = space.region(n_stages=4, gates=gates, n_mu=30, n_sigma=20)
        assert region.mu_grid.shape == (30, 20)
        assert region.feasible.shape == (30, 20)
        assert region.realizable.shape == (30, 20)

    def test_region_has_both_feasible_and_infeasible_points(self, space, gates):
        region = space.region(n_stages=4, gates=gates)
        assert 0.0 < region.feasible_fraction < 1.0

    def test_feasible_region_shrinks_with_more_stages(self, space, gates):
        few = space.region(n_stages=2, gates=gates)
        many = space.region(n_stages=16, gates=gates)
        assert many.feasible_fraction < few.feasible_fraction

    def test_realizable_and_feasible_subset(self, space, gates):
        region = space.region(n_stages=4, gates=gates)
        combined = region.realizable_and_feasible
        assert np.all(combined <= region.feasible)
        assert np.all(combined <= region.realizable)
        assert combined.any()
