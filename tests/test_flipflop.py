"""Tests for repro.circuit.flipflop."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.process.technology import default_technology


class TestNominalTiming:
    def test_overhead_is_sum_of_cq_and_setup(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        assert ff.nominal_overhead(tech) == pytest.approx(
            ff.nominal_clk_to_q(tech) + ff.nominal_setup(tech)
        )

    def test_overhead_positive_and_reasonable(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        overhead = ff.nominal_overhead(tech)
        # A register overhead should be tens of picoseconds in a 70 nm node.
        assert 20e-12 < overhead < 200e-12

    def test_more_stages_means_more_overhead(self):
        tech = default_technology()
        assert FlipFlopTiming(clk_to_q_stages=4.0).nominal_overhead(
            tech
        ) > FlipFlopTiming(clk_to_q_stages=2.0).nominal_overhead(tech)

    def test_zero_stage_ff_has_zero_overhead(self):
        tech = default_technology()
        ff = FlipFlopTiming(clk_to_q_stages=0.0, setup_stages=0.0)
        assert ff.nominal_overhead(tech) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlipFlopTiming(clk_to_q_stages=-1.0)
        with pytest.raises(ValueError):
            FlipFlopTiming(size=0.0)
        with pytest.raises(ValueError):
            FlipFlopTiming(fanout=0.0)

    def test_area_positive(self):
        tech = default_technology()
        assert FlipFlopTiming().area(tech) > 0.0


class TestSampledOverhead:
    def test_nominal_vth_gives_nominal_overhead(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        samples = ff.overhead_samples(tech, np.array([tech.vth0]))
        assert samples[0] == pytest.approx(ff.nominal_overhead(tech))

    def test_high_vth_slows_the_register(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        slow = ff.overhead_samples(tech, np.array([tech.vth0 + 0.05]))[0]
        assert slow > ff.nominal_overhead(tech)

    def test_length_scaling(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        stretched = ff.overhead_samples(
            tech, np.array([tech.vth0]), np.array([1.1 * tech.lmin])
        )[0]
        assert stretched == pytest.approx(1.1 * ff.nominal_overhead(tech))

    def test_sample_shape_preserved(self):
        tech = default_technology()
        ff = FlipFlopTiming()
        vth = np.full((7,), tech.vth0)
        assert ff.overhead_samples(tech, vth).shape == (7,)
