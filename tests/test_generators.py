"""Tests for repro.circuit.generators."""

import pytest

from repro.circuit.generators import (
    alu_block,
    decoder_block,
    inverter_chain,
    random_logic_block,
)


class TestInverterChain:
    def test_depth_and_gate_count(self):
        chain = inverter_chain(7)
        assert chain.n_gates == 7
        assert chain.logic_depth() == 7

    def test_single_output_marked(self):
        chain = inverter_chain(4)
        assert len(chain.primary_outputs) == 1

    def test_size_applied_to_all_gates(self):
        chain = inverter_chain(3, size=2.5)
        assert all(gate.size == pytest.approx(2.5) for gate in chain.gates.values())

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            inverter_chain(0)


class TestRandomLogicBlock:
    def test_gate_count_matches_request(self):
        block = random_logic_block("b", n_gates=60, depth=10, n_inputs=8, n_outputs=5, seed=3)
        assert block.n_gates == 60

    def test_depth_matches_request(self):
        block = random_logic_block("b", n_gates=80, depth=12, n_inputs=8, n_outputs=5, seed=3)
        assert block.logic_depth() == 12

    def test_io_counts(self):
        block = random_logic_block("b", n_gates=50, depth=9, n_inputs=11, n_outputs=6, seed=1)
        assert len(block.primary_inputs) == 11
        assert len(block.primary_outputs) == 6

    def test_deterministic_for_fixed_seed(self):
        a = random_logic_block("b", n_gates=40, depth=8, n_inputs=6, n_outputs=4, seed=9)
        b = random_logic_block("b", n_gates=40, depth=8, n_inputs=6, n_outputs=4, seed=9)
        assert [g.cell for g in a.gates.values()] == [g.cell for g in b.gates.values()]
        assert [g.fanins for g in a.gates.values()] == [g.fanins for g in b.gates.values()]

    def test_different_seeds_differ(self):
        a = random_logic_block("b", n_gates=40, depth=8, n_inputs=6, n_outputs=4, seed=9)
        b = random_logic_block("b", n_gates=40, depth=8, n_inputs=6, n_outputs=4, seed=10)
        assert [g.fanins for g in a.gates.values()] != [g.fanins for g in b.gates.values()]

    def test_acyclic(self):
        block = random_logic_block("b", n_gates=120, depth=15, n_inputs=10, n_outputs=8, seed=5)
        assert len(block.topological_order()) == 120

    def test_validation(self):
        with pytest.raises(ValueError):
            random_logic_block("b", n_gates=5, depth=10, n_inputs=3, n_outputs=2, seed=1)
        with pytest.raises(ValueError):
            random_logic_block("b", n_gates=10, depth=0, n_inputs=3, n_outputs=2, seed=1)
        with pytest.raises(ValueError):
            random_logic_block("b", n_gates=10, depth=2, n_inputs=0, n_outputs=2, seed=1)


class TestStructuredBlocks:
    def test_alu_full_has_sum_outputs(self):
        alu = alu_block(width=4, part="full")
        assert alu.n_gates > 0
        assert any(name.startswith("sum") for name in alu.primary_outputs)

    def test_alu_parts_are_smaller_than_full(self):
        full = alu_block(width=8, part="full")
        lower = alu_block(width=8, part="lower")
        upper = alu_block(width=8, part="upper")
        assert lower.n_gates < full.n_gates
        assert upper.n_gates < full.n_gates

    def test_alu_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            alu_block(width=1)
        with pytest.raises(ValueError):
            alu_block(width=4, part="middle")

    def test_alu_carry_chain_gives_depth_proportional_to_width(self):
        shallow = alu_block(width=4, part="full")
        deep = alu_block(width=8, part="full")
        assert deep.logic_depth() > shallow.logic_depth()

    def test_decoder_output_count(self):
        decoder = decoder_block(n_address=3)
        assert len(decoder.primary_outputs) == 8

    def test_decoder_depth_is_shallow(self):
        decoder = decoder_block(n_address=4)
        assert decoder.logic_depth() <= 6

    def test_decoder_rejects_bad_width(self):
        with pytest.raises(ValueError):
            decoder_block(n_address=1)
        with pytest.raises(ValueError):
            decoder_block(n_address=9)
