"""Tests for repro.optimize.global_opt (the Fig. 9 algorithm)."""

import numpy as np
import pytest

from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.builder import alu_decoder_pipeline


@pytest.fixture(scope="module")
def setup(technology, variation_combined):
    """A small balanced pipeline that misses its pipeline yield target."""
    pipeline = alu_decoder_pipeline(width=4, n_address=3)
    sizer = LagrangianSizer(technology, variation_combined)
    stage_yield = 0.80 ** (1.0 / 3.0)
    worst = max(
        sizer.stage_distribution(stage).delay_at_yield(stage_yield)
        for stage in pipeline.stages
    )
    target_delay = 0.90 * worst
    balanced = design_balanced_pipeline(pipeline, sizer, target_delay, 0.80)
    return pipeline, sizer, balanced, target_delay


class TestGlobalOptimizer:
    def test_result_bookkeeping(self, setup):
        _, sizer, balanced, target_delay = setup
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        result = optimizer.optimize(balanced.pipeline, target_delay, 0.80)
        assert set(result.stage_order) == set(balanced.pipeline.stage_names)
        assert set(result.sensitivity_ratios) == set(balanced.pipeline.stage_names)
        assert result.before.total_area == pytest.approx(balanced.total_area, rel=1e-6)
        assert result.after.total_area == pytest.approx(
            result.pipeline.total_area(), rel=1e-6
        )

    def test_meets_or_approaches_yield_target(self, setup):
        _, sizer, balanced, target_delay = setup
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        result = optimizer.optimize(balanced.pipeline, target_delay, 0.80)
        assert result.after.pipeline_yield >= min(
            0.78, result.before.pipeline_yield
        )

    def test_input_pipeline_not_mutated(self, setup):
        _, sizer, balanced, target_delay = setup
        sizes_before = [stage.netlist.sizes() for stage in balanced.pipeline.stages]
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        optimizer.optimize(balanced.pipeline, target_delay, 0.80)
        for stage, sizes in zip(balanced.pipeline.stages, sizes_before):
            assert np.allclose(stage.netlist.sizes(), sizes)

    def test_area_recovery_when_target_is_loose(self, setup):
        """With a generous yield target the optimizer should recover area."""
        _, sizer, balanced, target_delay = setup
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        result = optimizer.optimize(balanced.pipeline, target_delay, 0.60)
        assert result.after.total_area <= result.before.total_area * 1.02
        assert result.after.pipeline_yield >= 0.60 - 0.02

    def test_ordering_ablation_runs(self, setup):
        _, sizer, balanced, target_delay = setup
        for ordering in ("ri_ascending", "ri_descending", "pipeline"):
            optimizer = GlobalPipelineOptimizer(sizer, curve_points=3, ordering=ordering)
            result = optimizer.optimize(balanced.pipeline, target_delay, 0.80)
            assert result.after.pipeline_yield > 0.0

    def test_snapshot_consistency(self, setup):
        _, sizer, balanced, target_delay = setup
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        snapshot = optimizer.snapshot(balanced.pipeline, target_delay)
        assert snapshot.stage_names == tuple(balanced.pipeline.stage_names)
        assert snapshot.total_area == pytest.approx(balanced.total_area, rel=1e-6)
        assert np.all((snapshot.stage_yields >= 0.0) & (snapshot.stage_yields <= 1.0))
        assert 0.0 <= snapshot.pipeline_yield <= 1.0
        # The pipeline can never yield better than its best stage.
        assert snapshot.pipeline_yield <= snapshot.stage_yields.max() + 1e-9

    def test_validation(self, setup):
        _, sizer, balanced, target_delay = setup
        optimizer = GlobalPipelineOptimizer(sizer)
        with pytest.raises(ValueError):
            optimizer.optimize(balanced.pipeline, -1.0, 0.8)
        with pytest.raises(ValueError):
            optimizer.optimize(balanced.pipeline, target_delay, 1.2)
        with pytest.raises(ValueError):
            GlobalPipelineOptimizer(sizer, rounds=0)
        with pytest.raises(ValueError):
            GlobalPipelineOptimizer(sizer, ordering="sideways")
        with pytest.raises(ValueError):
            GlobalPipelineOptimizer(sizer, max_stage_yield=0.4)
