"""Golden-snapshot tests for the design-flow benchmarks.

The Table II / Table III / Fig. 7 benchmarks were rewired from hand-wired
low-level loops onto the Design API facade; the snapshots under
``tests/goldens/`` were captured from the pre-rewire implementations, so
these tests prove the facade reproduces the original outputs **byte for
byte** (the same pattern PR 2 used for the fig2/fig5/table1 rewires).

The three reproductions share one Study-API session (via ``bench_utils``),
which also exercises the cross-benchmark reuse of balanced baselines and
area--delay curves.

These runs take a few minutes; set ``REPRO_SKIP_GOLDEN_BENCHMARKS=1`` to
skip them (CI does, because byte-level float formatting can differ across
libm builds -- the goldens pin the behavior on the machine that captured
them).
"""

from __future__ import annotations

import importlib
import os
import pathlib
import sys

import pytest

_BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
_GOLDENS_DIR = pathlib.Path(__file__).resolve().parent / "goldens"

if str(_BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS_DIR))

pytestmark = [
    pytest.mark.golden,
    pytest.mark.slow,
    pytest.mark.skipif(
        os.environ.get("REPRO_SKIP_GOLDEN_BENCHMARKS") == "1",
        reason="golden design-benchmark runs skipped via REPRO_SKIP_GOLDEN_BENCHMARKS",
    ),
]

CASES = [
    ("bench_table2_yield_ensure", "reproduce_table2", "table2_ensure_yield"),
    ("bench_table3_area_reduction", "reproduce_table3", "table3_area_reduction"),
    ("bench_fig7_unbalancing", "reproduce_fig7", "fig7_unbalancing"),
]


@pytest.mark.parametrize("module_name, function_name, golden_name", CASES)
def test_design_benchmark_matches_golden(module_name, function_name, golden_name):
    module = importlib.import_module(module_name)
    produced = getattr(module, function_name)() + "\n"
    golden = (_GOLDENS_DIR / f"{golden_name}.txt").read_text()
    assert produced == golden, (
        f"{module_name}.{function_name} no longer reproduces the pre-rewire "
        f"output byte-identically (golden: tests/goldens/{golden_name}.txt)"
    )
