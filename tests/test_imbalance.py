"""Tests for repro.core.imbalance (paper section 3.2, eq. 14)."""

import numpy as np
import pytest

from repro.core.imbalance import (
    StageAction,
    classify_stage,
    classify_stages,
    imbalance_improves_yield,
    pipeline_yield_from_stage_yields,
    sensitivity_ratio,
)


class TestSensitivityRatio:
    def test_unit_elasticity_curve(self):
        """A = c / D has elasticity exactly 1 everywhere."""
        delays = np.linspace(1.0, 2.0, 50)
        areas = 3.0 / delays
        ratio = sensitivity_ratio(areas, delays)
        assert ratio == pytest.approx(1.0, rel=0.01)

    def test_steep_curve_has_high_ratio(self):
        delays = np.linspace(1.0, 2.0, 50)
        areas = 5.0 / delays**3
        assert sensitivity_ratio(areas, delays) > 1.5

    def test_flat_curve_has_low_ratio(self):
        delays = np.linspace(1.0, 2.0, 50)
        areas = 2.0 - 0.05 * delays
        assert sensitivity_ratio(areas, delays) < 0.2

    def test_unsorted_points_accepted(self):
        delays = np.array([2.0, 1.0, 1.5])
        areas = np.array([1.0, 2.0, 4.0 / 3.0])
        # Only three coarse samples of A = c/D: the finite-difference slope is
        # approximate, so just require the elasticity to be near unity.
        assert sensitivity_ratio(areas, delays) == pytest.approx(1.0, rel=0.2)

    def test_at_delay_is_clipped_into_range(self):
        delays = np.linspace(1.0, 2.0, 10)
        areas = 3.0 / delays
        assert sensitivity_ratio(areas, delays, at_delay=100.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sensitivity_ratio(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            sensitivity_ratio(np.array([1.0, 2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            sensitivity_ratio(np.array([-1.0, 2.0]), np.array([1.0, 2.0]))


class TestClassification:
    def test_high_ratio_is_shrink(self):
        record = classify_stage("s", 2.0)
        assert record.action is StageAction.SHRINK
        assert record.is_cheap_to_slow_down

    def test_low_ratio_is_grow(self):
        assert classify_stage("s", 0.4).action is StageAction.GROW

    def test_near_unity_is_neutral(self):
        assert classify_stage("s", 1.01).action is StageAction.NEUTRAL

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            classify_stage("s", -0.1)

    def test_classify_stages_sorted_descending(self):
        records = classify_stages({"a": 0.5, "b": 2.0, "c": 1.0})
        assert [r.name for r in records] == ["b", "c", "a"]
        assert records[0].action is StageAction.SHRINK
        assert records[-1].action is StageAction.GROW


class TestYieldComposition:
    def test_product_of_stage_yields(self):
        assert pipeline_yield_from_stage_yields([0.9, 0.9, 0.9]) == pytest.approx(0.729)

    def test_validation(self):
        with pytest.raises(ValueError):
            pipeline_yield_from_stage_yields([])
        with pytest.raises(ValueError):
            pipeline_yield_from_stage_yields([1.2])

    def test_imbalance_criterion_improvement(self):
        """The paper's Y1*Y2*Y3 > Y0^3 check."""
        assert imbalance_improves_yield(0.93, [0.91, 0.99, 0.91])
        assert not imbalance_improves_yield(0.93, [0.80, 0.99, 0.80])

    def test_imbalance_criterion_validation(self):
        with pytest.raises(ValueError):
            imbalance_improves_yield(1.2, [0.9])
