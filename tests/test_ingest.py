"""Tests for external netlist ingestion (repro.circuit.ingest).

Covers the parser/emitter round-trip contract (bit-identical schedules and
arrival times), malformed-input error paths (typed, located errors), the
cell-mapping policy, the Rent's-rule scale generator's distribution sanity
and determinism, and the registered pipeline kinds end to end through the
Study/Design APIs.
"""

import json

import numpy as np
import pytest

from repro.circuit.generators import random_logic_block
from repro.circuit.ingest import (
    FIXTURE_DIR,
    CellMapping,
    ParseError,
    load_bench,
    load_yosys_json,
    normalise_cell_type,
    parse_bench,
    parse_yosys_json,
    scale_logic_block,
    write_bench,
    write_yosys_json,
)
from repro.circuit.netlist import Netlist, NetlistError
from repro.timing.delay_model import GateDelayModel
from repro.timing.sta import arrival_times


def nominal_arrivals(netlist):
    model = GateDelayModel(netlist.technology)
    return arrival_times(netlist, model.nominal_delays(netlist))


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
def test_c17_fixture_parses():
    netlist = load_bench(FIXTURE_DIR / "c17.bench")
    assert netlist.n_gates == 6
    assert netlist.primary_inputs == ["1", "2", "3", "6", "7"]
    assert netlist.primary_outputs == ["22", "23"]
    assert all(g.cell == "NAND2" for g in netlist.gates.values())
    assert netlist.logic_depth() == 3


def test_adder4_fixture_parses_with_register_cut():
    netlist = load_yosys_json(FIXTURE_DIR / "adder4_mapped.json")
    # 29 cells - 4 DFFs = 25 combinational gates.
    assert netlist.n_gates == 25
    # DFF Q nets became primary inputs; the constant-0 cin became const0.
    assert "sum0" in netlist.primary_inputs
    assert "const0" in netlist.primary_inputs
    # The DFF D drivers and the cout buffer are the primary outputs.
    assert len(netlist.primary_outputs) == 5
    assert "cout" in netlist.primary_outputs
    # sky130 names mapped onto the logical-effort library.
    cells = {g.cell for g in netlist.gates.values()}
    assert cells == {"XOR2", "NAND2", "INV", "AOI21", "BUF"}
    # Ripple-carry chain: depth grows with the 4-bit carry chain.
    assert netlist.logic_depth() >= 8


# ----------------------------------------------------------------------
# Statement forms and cell mapping
# ----------------------------------------------------------------------
def test_instance_form_and_mixed_statements():
    text = """
    INPUT(a)
    INPUT(b)
    NAND2_0 (u, a, b)
    y = NOR(u, b)
    OUTPUT(y)
    """
    netlist = parse_bench(text)
    assert netlist.gate("u").cell == "NAND2"
    assert netlist.gate("y").cell == "NOR2"
    assert netlist.primary_outputs == ["y"]


def test_implicit_outputs_when_none_declared():
    text = """
    INPUT(a)
    INPUT(b)
    NAND2_0 (u, a, b)
    NOR2_1 (v, u, b)
    """
    netlist = parse_bench(text)
    # No OUTPUT statements: the gate nothing reads is the implicit output.
    assert netlist.primary_outputs == ["v"]


def test_and_or_map_to_inverting_counterparts():
    text = """
    INPUT(a)
    INPUT(b)
    INPUT(c)
    u = AND(a, b)
    v = OR(u, c)
    OUTPUT(v)
    """
    netlist = parse_bench(text)
    assert netlist.gate("u").cell == "NAND2"
    assert netlist.gate("v").cell == "NOR2"


def test_wide_gate_tree_decomposition():
    inputs = [f"i{k}" for k in range(9)]
    text = "\n".join(f"INPUT({name})" for name in inputs)
    text += f"\ny = NAND({', '.join(inputs)})\nOUTPUT(y)\n"
    netlist = parse_bench(text)
    assert "y" in netlist.gates
    helpers = [n for n in netlist.gates if n.startswith("y__t")]
    assert helpers, "9-input NAND must decompose into helper gates"
    assert all(netlist.gates[n].cell.startswith("NAND") for n in helpers)
    netlist.validate()


def test_register_cut_in_bench():
    text = """
    INPUT(a)
    g = NOT(a)
    q = DFF(g)
    h = NOT(q)
    OUTPUT(h)
    """
    netlist = parse_bench(text)
    assert "q" in netlist.primary_inputs  # Q net becomes a PI
    assert "g" in netlist.primary_outputs  # D driver becomes a PO
    assert "h" in netlist.primary_outputs


def test_output_on_primary_input_gets_buffer():
    netlist = parse_bench("INPUT(a)\nOUTPUT(a)\nb = NOT(a)\nOUTPUT(b)\n")
    assert "a__po" in netlist.gates
    assert netlist.gates["a__po"].cell == "BUF"


def test_normalise_cell_type():
    assert normalise_cell_type("sky130_fd_sc_hd__nand2_4") == "nand2"
    assert normalise_cell_type("$_DFF_P_") == "dff"
    assert normalise_cell_type("$_NAND_") == "nand"
    assert normalise_cell_type("NAND") == "nand"
    assert normalise_cell_type("INVx4") == "invx4"  # unknown stays itself


def test_unknown_cell_error_policy():
    text = "INPUT(a)\nINPUT(b)\ny = FROB(a, b)\nOUTPUT(y)\n"
    with pytest.raises(ParseError) as err:
        parse_bench(text)
    assert "FROB" in str(err.value)
    assert "fallback" in str(err.value)
    assert err.value.line == 3


def test_unknown_cell_fallback_policy():
    text = "INPUT(a)\nINPUT(b)\ny = FROB(a, b)\nOUTPUT(y)\n"
    mapping = CellMapping(unknown_cell="fallback")
    netlist = parse_bench(text, cell_mapping=mapping)
    assert netlist.gate("y").cell == "NAND2"  # arity-matched substitute
    assert "FROB" in mapping.fallbacks


def test_cell_mapping_table_extension():
    mapping = CellMapping(table={"frob": "nand"})
    netlist = parse_bench(
        "INPUT(a)\nINPUT(b)\ny = FROB(a, b)\nOUTPUT(y)\n", cell_mapping=mapping
    )
    assert netlist.gate("y").cell == "NAND2"


def test_bad_unknown_cell_policy_rejected():
    with pytest.raises(ValueError):
        CellMapping(unknown_cell="ignore")


# ----------------------------------------------------------------------
# Malformed inputs hit typed, located errors
# ----------------------------------------------------------------------
def test_dangling_net_is_located_netlist_error():
    text = "INPUT(a)\ny = NAND(a, ghost)\nOUTPUT(y)\n"
    with pytest.raises(NetlistError) as err:
        parse_bench(text)
    assert err.value.net == "ghost"
    assert err.value.gate == "y"
    assert "ghost" in str(err.value)


def test_duplicate_gate_is_netlist_error():
    text = "INPUT(a)\ny = NOT(a)\ny = NOT(a)\n"
    with pytest.raises(NetlistError) as err:
        parse_bench(text)
    assert "duplicate" in str(err.value)
    assert err.value.gate == "y"


def test_cycle_is_netlist_error_with_path():
    text = "INPUT(a)\nu = NAND(a, v)\nv = NAND(a, u)\nOUTPUT(v)\n"
    with pytest.raises(NetlistError) as err:
        parse_bench(text)
    message = str(err.value)
    assert "cycle" in message
    assert "u" in message and "v" in message


def test_unparseable_statement_is_parse_error_with_line():
    with pytest.raises(ParseError) as err:
        parse_bench("INPUT(a)\nthis is not a statement\n")
    assert err.value.line == 2


def test_yosys_invalid_json():
    with pytest.raises(ParseError) as err:
        parse_yosys_json("{not json")
    assert "invalid JSON" in str(err.value)


def test_yosys_no_modules_and_module_selection():
    with pytest.raises(ParseError):
        parse_yosys_json({"modules": {}})
    two = {"modules": {"m1": {"ports": {}, "cells": {}},
                       "m2": {"ports": {}, "cells": {}}}}
    with pytest.raises(ParseError) as err:
        parse_yosys_json(two)
    assert "m1" in str(err.value) and "m2" in str(err.value)
    with pytest.raises(ParseError) as err:
        parse_yosys_json(two, module="m3")
    assert "m3" in str(err.value)


def test_yosys_multi_output_cell_rejected():
    doc = {"modules": {"m": {
        "ports": {"a": {"direction": "input", "bits": [2]}},
        "cells": {"weird": {"type": "nand2", "connections":
                            {"A": [2], "Y": [3], "Z": [4]}}},
    }}}
    with pytest.raises(ParseError) as err:
        parse_yosys_json(doc)
    assert "exactly one" in str(err.value)


# ----------------------------------------------------------------------
# Round trip: emit -> parse is bit-exact
# ----------------------------------------------------------------------
def _round_trip_cases():
    yield load_bench(FIXTURE_DIR / "c17.bench")
    yield load_yosys_json(FIXTURE_DIR / "adder4_mapped.json")
    for seed in (7, 19):
        yield random_logic_block(
            f"rl{seed}", n_gates=80, depth=9, n_inputs=6, n_outputs=4, seed=seed
        )
    yield scale_logic_block("scale", 400, seed=5)


@pytest.mark.parametrize("fmt", ["bench", "yosys"])
def test_round_trip_bit_identical(fmt):
    for netlist in _round_trip_cases():
        netlist.auto_place()
        if fmt == "bench":
            reparsed = parse_bench(write_bench(netlist), netlist.name)
        else:
            reparsed = parse_yosys_json(write_yosys_json(netlist))
        assert reparsed.topological_order() == netlist.topological_order()
        assert reparsed.primary_inputs == netlist.primary_inputs
        assert reparsed.primary_outputs == netlist.primary_outputs
        assert np.array_equal(reparsed.sizes(), netlist.sizes())
        assert np.array_equal(reparsed.levels(), netlist.levels())
        assert np.array_equal(
            reparsed.load_capacitances(), netlist.load_capacitances()
        )
        # The contract that matters downstream: bit-identical arrivals.
        assert np.array_equal(nominal_arrivals(reparsed), nominal_arrivals(netlist))
        for name in netlist.gates:
            original, back = netlist.gate(name), reparsed.gate(name)
            assert (original.size, original.x, original.y) == (
                back.size,
                back.x,
                back.y,
            )


def test_round_trip_survives_resizing():
    netlist = load_bench(FIXTURE_DIR / "c17.bench")
    rng = np.random.default_rng(3)
    netlist.set_sizes(np.exp(rng.normal(0.3, 0.4, size=netlist.n_gates)))
    reparsed = parse_bench(write_bench(netlist), netlist.name)
    assert np.array_equal(reparsed.sizes(), netlist.sizes())
    assert np.array_equal(nominal_arrivals(reparsed), nominal_arrivals(netlist))


def test_yosys_emitter_is_valid_json_with_netnames():
    netlist = load_bench(FIXTURE_DIR / "c17.bench")
    document = json.loads(write_yosys_json(netlist))
    module = document["modules"]["c17"]
    assert set(module) >= {"ports", "cells", "netnames"}
    assert all("repro_size" in c["attributes"] for c in module["cells"].values())


# ----------------------------------------------------------------------
# Scale generator
# ----------------------------------------------------------------------
def test_scale_generator_deterministic_per_seed():
    first = scale_logic_block("s", 2000, seed=11)
    second = scale_logic_block("s", 2000, seed=11)
    assert write_bench(first) == write_bench(second)
    different = scale_logic_block("s", 2000, seed=12)
    assert write_bench(first) != write_bench(different)


def test_scale_generator_rent_io_counts():
    n_gates = 5000
    netlist = scale_logic_block("rent", n_gates, seed=1)
    external = 2.5 * n_gates**0.6
    assert len(netlist.primary_inputs) == max(4, round(0.6 * external))
    assert len(netlist.primary_outputs) == max(2, round(0.4 * external))


def test_scale_generator_distributions():
    netlist = scale_logic_block("dist", 5000, seed=2)
    # Depth tracks the sublinear profile (2.6 * G^0.22).
    target_depth = 2.6 * 5000**0.22
    assert 0.7 * target_depth <= netlist.logic_depth() <= 1.3 * target_depth
    fanouts = np.array([len(f) for f in netlist.fanout_indices()])
    assert 1.3 <= fanouts.mean() <= 3.0
    # Heavy fanout tail: hub gates collect far more fanout than the mean.
    assert fanouts.max() >= 8 * fanouts.mean()
    coeffs = netlist.cell_coefficients()
    assert 1.5 <= coeffs["n_inputs"].mean() <= 2.6


def test_scale_generator_argument_validation():
    with pytest.raises(ValueError):
        scale_logic_block("x", 8, seed=0)
    with pytest.raises(ValueError):
        scale_logic_block("x", 100, seed=0, rent_exponent=1.5)
    with pytest.raises(ValueError):
        scale_logic_block("x", 100, seed=0, rent_coefficient=-1.0)
    with pytest.raises(ValueError):
        scale_logic_block("x", 100, seed=0, depth=1)


# ----------------------------------------------------------------------
# Pipeline kinds through the Study/Design APIs
# ----------------------------------------------------------------------
def test_pipeline_kinds_registered():
    from repro.api.spec import pipeline_kinds

    assert {"bench", "yosys_json", "scale_logic"} <= set(pipeline_kinds())


def test_kind_requires_exactly_one_source_option():
    from repro import PipelineSpec, Session

    session = Session()
    with pytest.raises(ValueError) as err:
        session.pipeline(PipelineSpec(kind="bench", n_stages=1))
    assert "path" in str(err.value) and "fixture" in str(err.value)
    with pytest.raises(ValueError) as err:
        session.pipeline(
            PipelineSpec(kind="bench", n_stages=1, options={"fixture": "nope"})
        )
    assert "c17.bench" in str(err.value)


def test_bench_kind_runs_all_backends():
    from repro import AnalysisSpec, PipelineSpec, Session, StudySpec, VariationSpec

    session = Session()
    pipeline = PipelineSpec(kind="bench", n_stages=2, options={"fixture": "c17"})
    reports = {}
    for backend in ("montecarlo", "ssta", "analytic"):
        spec = StudySpec(
            pipeline=pipeline,
            variation=VariationSpec.combined(),
            analysis=AnalysisSpec(n_samples=300, seed=9, backend=backend),
        )
        report = session.run(spec)
        assert report.pipeline_mean > 0
        reports[backend] = report
    # Backends agree on the mean to first order.
    mc, ssta = reports["montecarlo"], reports["ssta"]
    assert abs(ssta.pipeline_mean - mc.pipeline_mean) < 0.1 * mc.pipeline_mean


def test_yosys_kind_design_study():
    from repro import (AnalysisSpec, DesignSpec, DesignStudySpec, PipelineSpec,
                      Session, VariationSpec)

    spec = DesignStudySpec(
        pipeline=PipelineSpec(
            kind="yosys_json", n_stages=2, options={"fixture": "adder4_mapped"}
        ),
        variation=VariationSpec.combined(),
        design=DesignSpec(optimizer="balanced", sizer="greedy",
                          sizer_options={"max_moves": 100}, yield_target=0.85,
                          delay_policy="stage_min", delay_scale=0.9,
                          curve_points=2),
        validation=AnalysisSpec(n_samples=200, seed=13),
    )
    report = Session().run(spec)
    assert report.total_area > 0
    assert type(report).from_json(report.to_json()) == report


def test_scale_kind_spec_round_trips():
    from repro import PipelineSpec

    spec = PipelineSpec(
        kind="scale_logic", n_stages=2, options={"n_gates": 200, "seed": 3}
    )
    assert PipelineSpec.from_json(spec.to_json()) == spec
    built = spec.build()
    assert len(built.stages) == 2
    assert built.stages[0].netlist.n_gates == 200


def test_register_pipeline_kind_idempotent_for_same_factory():
    from repro.api.spec import register_pipeline_kind

    def factory(spec, technology):  # pragma: no cover - never built
        raise AssertionError

    register_pipeline_kind("ingest-test-kind", factory)
    # Same factory again: a no-op, not an error (module re-import case).
    register_pipeline_kind("ingest-test-kind", factory)

    def other(spec, technology):  # pragma: no cover - never built
        raise AssertionError

    with pytest.raises(ValueError) as err:
        register_pipeline_kind("ingest-test-kind", other)
    assert "different" in str(err.value)
    register_pipeline_kind("ingest-test-kind", other, replace=True)


def test_netlist_copy_preserves_file_order():
    netlist = load_yosys_json(FIXTURE_DIR / "adder4_mapped.json")
    clone = netlist.copy()
    assert clone.topological_order() == netlist.topological_order()
    assert np.array_equal(
        clone.load_capacitances(), netlist.load_capacitances()
    )
