"""Integration tests: the paper's claims, end to end, on scaled-down workloads.

Each test wires several subsystems together the way the benchmark harness
does (circuit generators -> Monte-Carlo engine / SSTA -> core pipeline and
yield models -> optimizers) and checks the qualitative result the paper
reports, at a size small enough for the unit-test suite.
"""

import numpy as np
import pytest

from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.variability import GateVariability, pipeline_variability_fixed_total_depth
from repro.core.yield_model import yield_correlated, yield_independent
from repro.montecarlo.engine import MonteCarloEngine
from repro.optimize.area_delay import characterize_stage
from repro.optimize.balance import design_balanced_pipeline
from repro.optimize.global_opt import GlobalPipelineOptimizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.optimize.redistribute import redistribute_area
from repro.pipeline.builder import alu_decoder_pipeline, inverter_chain_pipeline
from repro.process.variation import VariationModel
from repro.timing.ssta import StatisticalTimingAnalyzer


class TestModelVersusMonteCarlo:
    """Section 2.4: the analytical model tracks Monte-Carlo closely."""

    @pytest.mark.parametrize(
        "variation",
        [
            VariationModel.intra_random_only(),
            VariationModel.inter_only(0.03),
            VariationModel.combined(),
        ],
        ids=["intra", "inter", "combined"],
    )
    def test_pipeline_moments_match(self, variation):
        pipeline = inverter_chain_pipeline(5, 8)
        engine = MonteCarloEngine(variation, n_samples=4000, seed=17)
        mc = engine.run_pipeline(pipeline)
        model = PipelineDelayModel(mc.stage_distributions(), mc.correlation_matrix())
        estimate = model.estimate()
        pipeline_mc = mc.pipeline_result()
        assert estimate.mean == pytest.approx(pipeline_mc.mean, rel=0.01)
        assert estimate.std == pytest.approx(pipeline_mc.std, rel=0.25)

    def test_yield_estimates_match_monte_carlo(self):
        pipeline = inverter_chain_pipeline(5, 8)
        variation = VariationModel.combined()
        engine = MonteCarloEngine(variation, n_samples=4000, seed=23)
        mc = engine.run_pipeline(pipeline)
        target = float(np.quantile(mc.pipeline_samples, 0.85))
        model_yield = yield_correlated(
            mc.stage_distributions(), target, mc.correlation_matrix()
        )
        assert model_yield == pytest.approx(0.85, abs=0.05)

    def test_independent_formula_valid_for_intra_only(self):
        pipeline = inverter_chain_pipeline(6, 6)
        variation = VariationModel.intra_random_only()
        engine = MonteCarloEngine(variation, n_samples=4000, seed=29)
        mc = engine.run_pipeline(pipeline)
        target = float(np.quantile(mc.pipeline_samples, 0.8))
        model_yield = yield_independent(mc.stage_distributions(), target)
        assert model_yield == pytest.approx(0.8, abs=0.05)

    def test_ssta_feeds_the_pipeline_model_without_monte_carlo(self, technology):
        """The fully analytical path: SSTA stage moments -> Clark -> yield."""
        pipeline = inverter_chain_pipeline(4, 8)
        variation = VariationModel.combined()
        analyzer = StatisticalTimingAnalyzer(technology, variation)
        forms = [
            analyzer.stage_delay(s.netlist, s.flipflop, s.register_position)
            for s in pipeline.stages
        ]
        from repro.core.stage_delay import StageDelayDistribution

        stages = [StageDelayDistribution.from_canonical(f, s.name)
                  for f, s in zip(forms, pipeline.stages)]
        corr = analyzer.correlation_matrix(forms)
        estimate = PipelineDelayModel(stages, corr).estimate()

        mc = MonteCarloEngine(variation, n_samples=4000, seed=31).run_pipeline(pipeline)
        assert estimate.mean == pytest.approx(mc.pipeline_result().mean, rel=0.02)
        assert estimate.std == pytest.approx(mc.pipeline_result().std, rel=0.35)


class TestErrorTrends:
    """Section 2.4 / Fig. 3: error grows with stage count and correlation."""

    def test_sigma_error_grows_with_stage_count(self, rng):
        stage_mean, stage_std = 200e-12, 8e-12
        errors = []
        for n_stages in (2, 16):
            from repro.core.stage_delay import StageDelayDistribution

            stages = [StageDelayDistribution(stage_mean, stage_std)] * n_stages
            model = PipelineDelayModel(stages)
            estimate = model.estimate()
            samples = model.sample(200000, rng)
            errors.append(abs(estimate.std - samples.std()) / samples.std())
        assert errors[1] >= errors[0]

    def test_mean_error_stays_small(self, rng):
        from repro.core.stage_delay import StageDelayDistribution

        stages = [StageDelayDistribution(200e-12, 8e-12)] * 20
        model = PipelineDelayModel(stages)
        estimate = model.estimate()
        samples = model.sample(200000, rng)
        assert abs(estimate.mean - samples.mean()) / samples.mean() < 0.005


class TestLogicDepthTradeoffs:
    """Section 3.1 / Fig. 5(c): the crossover between intra- and inter-dominated regimes."""

    def test_crossover_with_inter_die_strength(self):
        counts = [4, 8, 12, 24]
        intra_gate = GateVariability(mu=10e-12, sigma_random=1.5e-12)
        inter_gate = GateVariability(mu=10e-12, sigma_random=0.3e-12, sigma_die=2.0e-12)
        intra_series = pipeline_variability_fixed_total_depth(intra_gate, 120, counts)
        inter_series = pipeline_variability_fixed_total_depth(inter_gate, 120, counts)
        assert intra_series[-1] > intra_series[0]
        assert inter_series[-1] < inter_series[0]

    def test_monte_carlo_confirms_intra_only_trend(self):
        """Deeper pipelines (more, shallower stages) are more variable under
        purely random intra-die variation."""
        variation = VariationModel.intra_random_only()
        shallow = inverter_chain_pipeline(2, 24)
        deep = inverter_chain_pipeline(8, 6)
        shallow_result = MonteCarloEngine(variation, n_samples=3000, seed=5).run_pipeline(shallow)
        deep_result = MonteCarloEngine(variation, n_samples=3000, seed=5).run_pipeline(deep)
        assert (
            deep_result.pipeline_result().variability
            > shallow_result.pipeline_result().variability
        )


class TestImbalanceAndGlobalOptimization:
    """Sections 3.2 and 4 on a small ALU-Decoder pipeline."""

    @pytest.fixture(scope="class")
    def designed(self, technology, variation_combined):
        pipeline = alu_decoder_pipeline(width=4, n_address=3)
        sizer = LagrangianSizer(technology, variation_combined)
        stage_yield = 0.80 ** (1.0 / 3.0)
        # As in the paper's Fig. 7 setup every stage sits at the delay target
        # and needs substantial sizing to get there (the operating point is on
        # the steep part of every stage's area-vs-delay curve, which is where
        # trading area between stages is meaningful).
        fastest = min(
            sizer.stage_distribution(stage).delay_at_yield(stage_yield)
            for stage in pipeline.stages
        )
        target = 0.85 * fastest
        balanced = design_balanced_pipeline(pipeline, sizer, target, 0.80)
        return sizer, balanced, target

    def test_heuristic_imbalance_beats_worst_imbalance(self, designed):
        sizer, balanced, target = designed
        curves = {
            stage.name: characterize_stage(stage, sizer, balanced.stage_yield_target, n_points=5)
            for stage in balanced.pipeline.stages
        }
        best = redistribute_area(
            balanced.pipeline, curves, sizer, target,
            balanced.stage_yield_target, fraction=0.08, mode="best",
        )
        worst = redistribute_area(
            balanced.pipeline, curves, sizer, target,
            balanced.stage_yield_target, fraction=0.08, mode="worst",
        )
        assert best.predicted_pipeline_yield(target) >= worst.predicted_pipeline_yield(
            target
        ) - 0.02

    def test_global_optimization_respects_yield_and_tracks_area(self, designed):
        sizer, balanced, target = designed
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        result = optimizer.optimize(balanced.pipeline, target, 0.80)
        assert result.after.pipeline_yield >= 0.76
        # The optimizer must not blow the area up relative to the balanced
        # design by more than a small factor (the paper reports ~2 % growth
        # when ensuring yield).
        assert result.after.total_area <= 1.2 * result.before.total_area

    def test_optimized_design_verified_by_monte_carlo(self, designed, variation_combined):
        sizer, balanced, target = designed
        optimizer = GlobalPipelineOptimizer(sizer, curve_points=3)
        result = optimizer.optimize(balanced.pipeline, target, 0.80)
        engine = MonteCarloEngine(variation_combined, n_samples=3000, seed=11)
        mc = engine.run_pipeline(result.pipeline)
        assert mc.yield_at(target) == pytest.approx(
            result.after.pipeline_yield, abs=0.08
        )
