"""Tests for repro.circuit.iscas."""

import pytest

from repro.circuit.iscas import ISCAS_PROFILES, available_benchmarks, iscas_benchmark


class TestProfiles:
    def test_paper_benchmarks_present(self):
        for name in ("c432", "c1908", "c2670", "c3540"):
            assert name in ISCAS_PROFILES

    def test_alias_for_papers_c1980(self):
        alias = iscas_benchmark("c1980")
        canonical = ISCAS_PROFILES["c1908"]
        assert alias.n_gates == canonical.n_gates

    def test_available_benchmarks_lists_alias(self):
        names = available_benchmarks()
        assert "c1980" in names and "c432" in names


class TestGeneratedStructure:
    @pytest.mark.parametrize("name", ["c432", "c1908", "c2670", "c3540"])
    def test_matches_published_profile(self, name):
        profile = ISCAS_PROFILES[name]
        netlist = iscas_benchmark(name)
        assert netlist.n_gates == profile.n_gates
        assert len(netlist.primary_inputs) == profile.n_inputs
        assert len(netlist.primary_outputs) == profile.n_outputs
        assert netlist.logic_depth() == profile.depth

    def test_deterministic(self):
        a = iscas_benchmark("c432")
        b = iscas_benchmark("c432")
        assert [g.fanins for g in a.gates.values()] == [
            g.fanins for g in b.gates.values()
        ]

    def test_relative_sizes_are_ordered(self):
        assert iscas_benchmark("c432").n_gates < iscas_benchmark("c1908").n_gates
        assert iscas_benchmark("c1908").n_gates < iscas_benchmark("c3540").n_gates

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            iscas_benchmark("c9999")


class TestNameNormalisation:
    def test_names_are_case_insensitive(self):
        assert iscas_benchmark("C432").n_gates == iscas_benchmark("c432").n_gates

    def test_whitespace_and_alias_normalised(self):
        a = iscas_benchmark(" C1980 ")
        b = iscas_benchmark("c1908")
        assert a.n_gates == b.n_gates

    def test_unknown_name_error_is_actionable(self):
        with pytest.raises(KeyError) as err:
            iscas_benchmark("c17")
        message = str(err.value)
        assert "c432" in message and "c3540" in message
        assert "c1980" in message  # aliases are listed too
