"""Tests for repro.montecarlo (engine and results)."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import inverter_chain
from repro.montecarlo.engine import MonteCarloEngine
from repro.montecarlo.results import MonteCarloResult, PipelineMonteCarloResult
from repro.pipeline.builder import inverter_chain_pipeline
from repro.pipeline.stage import PipelineStage
from repro.process.variation import VariationModel


class TestMonteCarloResult:
    def test_statistics(self, rng):
        samples = rng.normal(100.0, 5.0, size=50000)
        result = MonteCarloResult(samples)
        assert result.mean == pytest.approx(100.0, rel=0.01)
        assert result.std == pytest.approx(5.0, rel=0.05)
        assert result.variability == pytest.approx(0.05, rel=0.05)
        assert result.yield_at(100.0) == pytest.approx(0.5, abs=0.02)
        assert result.n_samples == 50000

    def test_delay_at_yield_matches_quantile(self, rng):
        samples = rng.normal(100.0, 5.0, size=50000)
        result = MonteCarloResult(samples)
        assert result.yield_at(result.delay_at_yield(0.9)) == pytest.approx(0.9, abs=0.01)

    def test_histogram_and_summary(self, rng):
        result = MonteCarloResult(rng.normal(1e-10, 5e-12, size=1000))
        counts, edges = result.histogram(bins=20)
        assert counts.sum() == 1000
        assert len(edges) == 21
        summary = result.summary()
        assert set(summary) == {"mean_ps", "std_ps", "variability", "p99_ps"}

    def test_to_distribution(self, rng):
        result = MonteCarloResult(rng.normal(1e-10, 5e-12, size=5000), name="s")
        dist = result.to_distribution()
        assert dist.mean == pytest.approx(result.mean)
        assert dist.name == "s"

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloResult(np.array([1.0]))
        result = MonteCarloResult(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            result.delay_at_yield(1.5)


class TestPipelineMonteCarloResult:
    def test_pipeline_samples_are_stage_max(self):
        stage_samples = np.array([[1.0, 3.0], [2.0, 1.0], [5.0, 4.0]])
        result = PipelineMonteCarloResult(stage_samples, ("a", "b"))
        assert np.allclose(result.pipeline_samples, [3.0, 2.0, 5.0])

    def test_stage_lookup_by_name_and_index(self):
        stage_samples = np.array([[1.0, 3.0], [2.0, 1.0], [5.0, 4.0]])
        result = PipelineMonteCarloResult(stage_samples, ("a", "b"))
        assert result.stage_result("b").mean == result.stage_result(1).mean
        with pytest.raises(KeyError):
            result.stage_result("zzz")
        with pytest.raises(IndexError):
            result.stage_result(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineMonteCarloResult(np.zeros((3,)), ("a",))
        with pytest.raises(ValueError):
            PipelineMonteCarloResult(np.zeros((3, 2)), ("a",))


class TestEngineOnStages:
    def test_reproducible_for_fixed_seed(self, variation_combined):
        chain = inverter_chain(5)
        stage = PipelineStage("s", chain)
        a = MonteCarloEngine(variation_combined, n_samples=200, seed=9).run_stage(stage)
        b = MonteCarloEngine(variation_combined, n_samples=200, seed=9).run_stage(stage)
        assert np.allclose(a.samples, b.samples)

    def test_different_seeds_differ(self, variation_combined):
        chain = inverter_chain(5)
        stage = PipelineStage("s", chain)
        a = MonteCarloEngine(variation_combined, n_samples=200, seed=9).run_stage(stage)
        b = MonteCarloEngine(variation_combined, n_samples=200, seed=10).run_stage(stage)
        assert not np.allclose(a.samples, b.samples, rtol=1e-6, atol=0.0)

    def test_stage_delay_includes_register_overhead(self, variation_intra_only, technology):
        chain = inverter_chain(5)
        with_ff = PipelineStage("s", chain, flipflop=FlipFlopTiming())
        without_ff = PipelineStage(
            "s2", chain.copy(), flipflop=FlipFlopTiming(clk_to_q_stages=0.0, setup_stages=0.0)
        )
        engine = MonteCarloEngine(variation_intra_only, n_samples=500, seed=1)
        assert engine.run_stage(with_ff).mean > engine.run_netlist(chain).mean
        assert engine.run_netlist(chain).mean == pytest.approx(
            engine.run_stage(without_ff).mean, rel=1e-9
        )

    def test_no_variation_gives_zero_spread(self, technology):
        silent = VariationModel(
            sigma_vth_inter=0.0,
            sigma_vth_random=0.0,
            sigma_vth_systematic=0.0,
            sigma_l_inter=0.0,
            sigma_l_systematic=0.0,
        )
        chain = inverter_chain(5)
        result = MonteCarloEngine(silent, n_samples=100, seed=1).run_netlist(chain)
        assert result.std == pytest.approx(0.0, abs=1e-18)

    def test_engine_validation(self, variation_combined):
        with pytest.raises(ValueError):
            MonteCarloEngine(variation_combined, n_samples=1)
        with pytest.raises(ValueError):
            MonteCarloEngine(variation_combined, chunk_size=0)

    def test_chunked_run_matches_statistics(self, variation_combined):
        """Chunked streaming changes the sample stream but not the physics."""
        chain = inverter_chain(6)
        stage = PipelineStage("s", chain)
        whole = MonteCarloEngine(
            variation_combined, n_samples=4000, seed=11
        ).run_stage(stage)
        chunked = MonteCarloEngine(
            variation_combined, n_samples=4000, seed=11, chunk_size=300
        ).run_stage(stage)
        assert chunked.n_samples == whole.n_samples
        assert chunked.mean == pytest.approx(whole.mean, rel=0.02)
        assert chunked.std == pytest.approx(whole.std, rel=0.15)

    def test_chunked_run_reproducible(self, variation_combined):
        chain = inverter_chain(5)
        stage = PipelineStage("s", chain)
        a = MonteCarloEngine(
            variation_combined, n_samples=250, seed=9, chunk_size=64
        ).run_stage(stage)
        b = MonteCarloEngine(
            variation_combined, n_samples=250, seed=9, chunk_size=64
        ).run_stage(stage)
        assert np.allclose(a.samples, b.samples)

    def test_chunk_larger_than_run_matches_unchunked(self, variation_combined):
        chain = inverter_chain(5)
        stage = PipelineStage("s", chain)
        unchunked = MonteCarloEngine(
            variation_combined, n_samples=200, seed=9
        ).run_stage(stage)
        oversized = MonteCarloEngine(
            variation_combined, n_samples=200, seed=9, chunk_size=10_000
        ).run_stage(stage)
        assert np.allclose(unchunked.samples, oversized.samples)


class TestEngineOnPipelines:
    def test_shapes_and_names(self, variation_combined):
        pipeline = inverter_chain_pipeline(4, 6)
        engine = MonteCarloEngine(variation_combined, n_samples=300, seed=2)
        result = engine.run_pipeline(pipeline)
        assert result.stage_samples.shape == (300, 4)
        assert result.stage_names == tuple(pipeline.stage_names)

    def test_chunked_pipeline_run(self, variation_combined):
        pipeline = inverter_chain_pipeline(3, 6)
        whole = MonteCarloEngine(
            variation_combined, n_samples=2000, seed=2
        ).run_pipeline(pipeline)
        chunked = MonteCarloEngine(
            variation_combined, n_samples=2000, seed=2, chunk_size=170
        ).run_pipeline(pipeline)
        assert chunked.stage_samples.shape == whole.stage_samples.shape
        assert np.allclose(
            chunked.stage_samples.mean(axis=0),
            whole.stage_samples.mean(axis=0),
            rtol=0.02,
        )

    def test_correlation_regimes(self):
        """Intra-only -> independent stages, inter-only -> perfectly correlated."""
        pipeline = inverter_chain_pipeline(3, 6)
        intra = MonteCarloEngine(
            VariationModel.intra_random_only(), n_samples=3000, seed=3
        ).run_pipeline(pipeline)
        inter = MonteCarloEngine(
            VariationModel.inter_only(), n_samples=3000, seed=3
        ).run_pipeline(pipeline)
        assert abs(intra.correlation_matrix()[0, 1]) < 0.08
        assert inter.correlation_matrix()[0, 1] > 0.999

    def test_combined_variation_gives_partial_correlation(self, mc_engine_combined):
        pipeline = inverter_chain_pipeline(3, 6)
        result = mc_engine_combined.run_pipeline(pipeline)
        rho = result.correlation_matrix()[0, 2]
        assert 0.1 < rho < 0.99

    def test_pipeline_delay_exceeds_stage_delays(self, mc_engine_combined):
        pipeline = inverter_chain_pipeline(4, 5)
        result = mc_engine_combined.run_pipeline(pipeline)
        assert result.pipeline_result().mean >= result.stage_means().max()

    def test_stage_yields_bracket_pipeline_yield(self, mc_engine_combined):
        pipeline = inverter_chain_pipeline(4, 5)
        result = mc_engine_combined.run_pipeline(pipeline)
        target = float(np.quantile(result.pipeline_samples, 0.8))
        pipeline_yield = result.yield_at(target)
        stage_yields = result.stage_yields(target)
        assert np.all(stage_yields >= pipeline_yield - 1e-12)

    def test_stage_distributions_match_samples(self, mc_engine_combined):
        pipeline = inverter_chain_pipeline(3, 5)
        result = mc_engine_combined.run_pipeline(pipeline)
        dists = result.stage_distributions()
        assert len(dists) == 3
        assert dists[0].mean == pytest.approx(result.stage_means()[0])
