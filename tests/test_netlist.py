"""Tests for repro.circuit.netlist."""

import numpy as np
import pytest

from repro.circuit.netlist import Netlist


def build_diamond() -> Netlist:
    """a -> (top, bottom) -> out: the smallest reconvergent structure."""
    netlist = Netlist("diamond")
    netlist.add_primary_input("a")
    netlist.add_gate("top", "INV", ["a"])
    netlist.add_gate("bottom", "INV", ["a"])
    netlist.add_gate("out", "NAND2", ["top", "bottom"])
    netlist.mark_primary_output("out")
    return netlist


class TestConstruction:
    def test_counts(self):
        netlist = build_diamond()
        assert netlist.n_gates == 3
        assert len(netlist) == 3
        assert netlist.primary_inputs == ["a"]
        assert netlist.primary_outputs == ["out"]

    def test_duplicate_names_rejected(self):
        netlist = build_diamond()
        with pytest.raises(ValueError):
            netlist.add_gate("top", "INV", ["a"])
        with pytest.raises(ValueError):
            netlist.add_primary_input("a")

    def test_unknown_fanin_rejected(self):
        netlist = Netlist("n")
        netlist.add_primary_input("a")
        with pytest.raises(KeyError):
            netlist.add_gate("g", "INV", ["missing"])

    def test_wrong_pin_count_rejected(self):
        netlist = Netlist("n")
        netlist.add_primary_input("a")
        with pytest.raises(ValueError):
            netlist.add_gate("g", "NAND2", ["a"])

    def test_unknown_cell_rejected(self):
        netlist = Netlist("n")
        netlist.add_primary_input("a")
        with pytest.raises(KeyError):
            netlist.add_gate("g", "NAND77", ["a"])

    def test_nonpositive_size_rejected(self):
        netlist = Netlist("n")
        netlist.add_primary_input("a")
        with pytest.raises(ValueError):
            netlist.add_gate("g", "INV", ["a"], size=0.0)

    def test_mark_unknown_output_rejected(self):
        netlist = build_diamond()
        with pytest.raises(KeyError):
            netlist.mark_primary_output("nope")


class TestTopology:
    def test_topological_order_respects_fanins(self):
        netlist = build_diamond()
        order = netlist.topological_order()
        assert order.index("top") < order.index("out")
        assert order.index("bottom") < order.index("out")

    def test_fanout_indices_are_inverse_of_fanins(self):
        netlist = build_diamond()
        index = netlist.gate_index()
        fanouts = netlist.fanout_indices()
        assert index["out"] in fanouts[index["top"]]
        assert index["out"] in fanouts[index["bottom"]]

    def test_cycle_detection(self):
        netlist = Netlist("cyclic")
        netlist.add_primary_input("a")
        netlist.add_gate("g1", "INV", ["a"])
        netlist.add_gate("g2", "INV", ["g1"])
        # Rewire g1 to close a cycle by editing the gate object directly.
        netlist.gate("g1").fanins = ("g2",)
        netlist._dirty = True
        with pytest.raises(ValueError):
            netlist.topological_order()

    def test_logic_depth_of_diamond(self):
        assert build_diamond().logic_depth() == 2

    def test_levels(self):
        netlist = build_diamond()
        levels = netlist.levels()
        index = netlist.gate_index()
        assert levels[index["top"]] == 1
        assert levels[index["out"]] == 2


class TestSizesAndLoads:
    def test_size_roundtrip(self):
        netlist = build_diamond()
        sizes = np.array([2.0, 3.0, 1.5])
        netlist.set_sizes(sizes)
        assert np.allclose(netlist.sizes(), sizes)

    def test_set_sizes_validates(self):
        netlist = build_diamond()
        with pytest.raises(ValueError):
            netlist.set_sizes(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            netlist.set_sizes(np.array([1.0, -2.0, 1.0]))

    def test_loads_include_fanout_input_caps(self):
        netlist = build_diamond()
        index = netlist.gate_index()
        loads = netlist.load_capacitances()
        nand_cin = netlist.library["NAND2"].input_capacitance(1.0, netlist.technology)
        assert loads[index["top"]] == pytest.approx(nand_cin)

    def test_output_gate_gets_default_load(self):
        netlist = build_diamond()
        index = netlist.gate_index()
        loads = netlist.load_capacitances()
        assert loads[index["out"]] == pytest.approx(netlist.default_output_load)

    def test_upsizing_fanout_increases_driver_load(self):
        netlist = build_diamond()
        index = netlist.gate_index()
        before = netlist.load_capacitances()[index["top"]]
        sizes = netlist.sizes()
        sizes[index["out"]] = 4.0
        after = netlist.load_capacitances(sizes)[index["top"]]
        assert after == pytest.approx(4.0 * before)

    def test_total_area_scales_with_sizes(self):
        netlist = build_diamond()
        base = netlist.total_area()
        doubled = netlist.total_area(2.0 * netlist.sizes())
        assert doubled == pytest.approx(2.0 * base)


class TestPlacementAndCopy:
    def test_auto_place_within_region(self):
        netlist = build_diamond()
        netlist.auto_place((0.25, 0.0, 0.5, 1.0))
        xs, ys = netlist.positions()
        assert np.all((xs >= 0.25) & (xs <= 0.5))
        assert np.all((ys >= 0.0) & (ys <= 1.0))

    def test_auto_place_orders_levels_left_to_right(self):
        netlist = build_diamond()
        netlist.auto_place()
        index = netlist.gate_index()
        xs, _ = netlist.positions()
        assert xs[index["top"]] < xs[index["out"]]

    def test_auto_place_rejects_bad_region(self):
        netlist = build_diamond()
        with pytest.raises(ValueError):
            netlist.auto_place((0.5, 0.0, 0.5, 1.0))

    def test_copy_is_deep(self):
        netlist = build_diamond()
        clone = netlist.copy()
        clone.gate("top").size = 8.0
        assert netlist.gate("top").size == pytest.approx(1.0)
        assert clone.primary_outputs == netlist.primary_outputs

    def test_copy_preserves_area(self):
        netlist = build_diamond()
        netlist.set_sizes(np.array([2.0, 2.0, 2.0]))
        assert netlist.copy().total_area() == pytest.approx(netlist.total_area())


class TestTypedErrors:
    def test_unknown_fanin_is_located(self):
        from repro.circuit.netlist import NetlistError

        netlist = build_diamond()
        with pytest.raises(NetlistError) as err:
            netlist.add_gate("bad", "INV", ["ghost"])
        assert err.value.netlist == "diamond"
        assert err.value.gate == "bad"
        assert err.value.net == "ghost"
        assert isinstance(err.value, ValueError)

    def test_duplicate_gate_is_located(self):
        from repro.circuit.netlist import NetlistError

        netlist = build_diamond()
        with pytest.raises(NetlistError) as err:
            netlist.add_gate("top", "INV", ["a"])
        assert err.value.gate == "top"
        assert "duplicate" in str(err.value)

    def test_forward_reference_deferred_then_validated(self):
        from repro.circuit.netlist import NetlistError

        netlist = Netlist("fwd")
        netlist.add_primary_input("a")
        netlist.add_gate("u", "NAND2", ["a", "ghost"], allow_forward=True)
        with pytest.raises(NetlistError) as err:
            netlist.validate()
        assert err.value.gate == "u"
        assert err.value.net == "ghost"
        # Supplying the missing driver afterwards makes it valid.
        netlist = Netlist("fwd")
        netlist.add_primary_input("a")
        netlist.add_gate("u", "NAND2", ["a", "later"], allow_forward=True)
        netlist.add_gate("later", "INV", ["a"])
        netlist.mark_primary_output("u")
        netlist.validate()
        assert netlist.logic_depth() == 2

    def test_cycle_error_names_the_cycle(self):
        from repro.circuit.netlist import NetlistError

        netlist = Netlist("loop")
        netlist.add_primary_input("a")
        netlist.add_gate("u", "NAND2", ["a", "w"], allow_forward=True)
        netlist.add_gate("v", "INV", ["u"])
        netlist.add_gate("w", "INV", ["v"])
        with pytest.raises(NetlistError) as err:
            netlist.validate()
        message = str(err.value)
        assert "cycle" in message
        assert "u -> " in message or "-> u" in message

    def test_lookup_error_is_both_keyerror_and_valueerror(self):
        from repro.circuit.netlist import NetlistLookupError

        netlist = build_diamond()
        with pytest.raises(NetlistLookupError) as err:
            netlist.mark_primary_output("ghost")
        assert isinstance(err.value, KeyError)
        assert isinstance(err.value, ValueError)
        # str() is the plain message, not KeyError's repr-quoted form.
        assert not str(err.value).startswith('"')
        assert "cannot mark unknown gate" in str(err.value)
