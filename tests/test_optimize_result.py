"""Unit tests for the sizing result containers (repro.optimize.result)."""

import numpy as np
import pytest

from repro.core.stage_delay import StageDelayDistribution
from repro.optimize.result import SizingResult, StageDesignRecord


def make_result(
    mean=90e-12,
    std=5e-12,
    target_delay=110e-12,
    target_yield=0.95,
    met_target=True,
    iterations=7,
    **overrides,
):
    distribution = StageDelayDistribution(mean, std, name="stage")
    fields = dict(
        sizes=np.array([1.0, 2.0, 1.5]),
        area=12.5,
        stage_delay=distribution,
        target_delay=target_delay,
        target_yield=target_yield,
        achieved_yield=distribution.yield_at(target_delay),
        met_target=met_target,
        iterations=iterations,
    )
    fields.update(overrides)
    return SizingResult(**fields)


class TestSizingResultDelayMargin:
    def test_positive_when_target_beaten(self):
        result = make_result(mean=90e-12, std=5e-12, target_delay=110e-12)
        assert result.delay_margin > 0.0

    def test_exact_value(self):
        result = make_result()
        expected = result.target_delay - result.stage_delay.delay_at_yield(
            result.target_yield
        )
        assert result.delay_margin == pytest.approx(expected, rel=0, abs=0)

    def test_negative_for_infeasible_target(self):
        result = make_result(
            mean=200e-12, std=10e-12, target_delay=50e-12, met_target=False
        )
        assert result.delay_margin < 0.0
        assert not result.met_target

    def test_zero_iteration_result(self):
        # A sizer may return before its first outer iteration (e.g. a
        # hand-constructed or degenerate-target result); the margin query
        # must still work.
        result = make_result(iterations=0)
        assert result.iterations == 0
        assert np.isfinite(result.delay_margin)

    def test_zero_sigma_distribution(self):
        # Deterministic stage: the yield-constrained delay is the mean.
        result = make_result(mean=100e-12, std=0.0, target_delay=120e-12)
        assert result.delay_margin == pytest.approx(20e-12)

    def test_margin_scales_with_yield_requirement(self):
        relaxed = make_result(target_yield=0.80)
        strict = make_result(target_yield=0.999)
        assert strict.delay_margin < relaxed.delay_margin

    def test_seconds_defaults_to_zero(self):
        assert make_result().seconds == 0.0


class TestStageDesignRecord:
    def test_as_row_rounds_to_one_decimal(self):
        record = StageDesignRecord(
            name="c432", area=12.345, area_percent=49.876, yield_percent=97.349
        )
        assert record.as_row() == ["c432", 49.9, 97.3]

    def test_as_row_keeps_name_first(self):
        record = StageDesignRecord(
            name="decoder", area=1.0, area_percent=0.0, yield_percent=100.0
        )
        row = record.as_row()
        assert row[0] == "decoder"
        assert len(row) == 3

    def test_as_row_handles_integral_values(self):
        record = StageDesignRecord(
            name="s", area=5.0, area_percent=25.0, yield_percent=80.0
        )
        assert record.as_row() == ["s", 25.0, 80.0]
