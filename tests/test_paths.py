"""Tests for repro.timing.paths."""

import numpy as np
import pytest

from repro.circuit.generators import inverter_chain
from repro.circuit.netlist import Netlist
from repro.timing.paths import (
    near_critical_gate_count,
    near_critical_path_count,
    path_report,
)


def build_parallel_paths(n_paths: int, depth: int) -> Netlist:
    """``n_paths`` equal-length inverter chains feeding separate outputs."""
    netlist = Netlist("parallel")
    netlist.add_primary_input("a")
    for path in range(n_paths):
        previous = "a"
        for level in range(depth):
            name = f"p{path}_g{level}"
            netlist.add_gate(name, "INV", [previous])
            previous = name
        netlist.mark_primary_output(previous)
    return netlist


class TestNearCriticalCounts:
    def test_single_chain_has_one_path(self):
        chain = inverter_chain(5)
        delays = np.ones(5)
        assert near_critical_path_count(chain, delays, margin=0.01) == 1

    def test_parallel_equal_paths_all_counted(self):
        netlist = build_parallel_paths(4, 3)
        delays = np.ones(netlist.n_gates)
        assert near_critical_path_count(netlist, delays, margin=1e-6) == 4

    def test_margin_excludes_faster_paths(self):
        netlist = build_parallel_paths(2, 3)
        delays = np.ones(netlist.n_gates)
        index = netlist.gate_index()
        # Make path 1 faster by 0.5 per gate.
        for level in range(3):
            delays[index[f"p1_g{level}"]] = 0.5
        assert near_critical_path_count(netlist, delays, margin=0.1) == 1
        assert near_critical_path_count(netlist, delays, margin=10.0) == 2

    def test_gate_count_grows_with_margin(self):
        netlist = build_parallel_paths(3, 4)
        delays = np.ones(netlist.n_gates)
        index = netlist.gate_index()
        for level in range(4):
            delays[index[f"p2_g{level}"]] = 0.8
        tight = near_critical_gate_count(netlist, delays, margin=0.01)
        loose = near_critical_gate_count(netlist, delays, margin=5.0)
        assert loose > tight

    def test_batched_delays_rejected(self):
        chain = inverter_chain(3)
        with pytest.raises(ValueError):
            near_critical_path_count(chain, np.ones((2, 3)), margin=0.1)


class TestPathReport:
    def test_report_fields(self):
        netlist = build_parallel_paths(3, 3)
        delays = np.ones(netlist.n_gates)
        report = path_report(netlist, delays, margin_fraction=0.05)
        assert report.delay == pytest.approx(3.0)
        assert len(report.critical_path) == 3
        assert report.n_paths_near_critical == 3
        assert report.margin == pytest.approx(0.15)

    def test_balanced_block_has_more_critical_paths_than_unbalanced(self):
        """The structural fact behind the paper's section 3.2 argument."""
        netlist = build_parallel_paths(4, 3)
        balanced = np.ones(netlist.n_gates)
        unbalanced = balanced.copy()
        index = netlist.gate_index()
        for path in range(1, 4):
            for level in range(3):
                unbalanced[index[f"p{path}_g{level}"]] = 0.7
        balanced_report = path_report(netlist, balanced)
        unbalanced_report = path_report(netlist, unbalanced)
        assert (
            unbalanced_report.n_paths_near_critical
            < balanced_report.n_paths_near_critical
        )
