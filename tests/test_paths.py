"""Tests for repro.timing.paths."""

import numpy as np
import pytest

from repro.circuit.generators import inverter_chain, random_logic_block
from repro.circuit.netlist import Netlist
from repro.timing.paths import (
    near_critical_gate_count,
    near_critical_path_count,
    path_report,
)
from repro.timing.sta import arrival_times, critical_path, max_delay


def build_parallel_paths(n_paths: int, depth: int) -> Netlist:
    """``n_paths`` equal-length inverter chains feeding separate outputs."""
    netlist = Netlist("parallel")
    netlist.add_primary_input("a")
    for path in range(n_paths):
        previous = "a"
        for level in range(depth):
            name = f"p{path}_g{level}"
            netlist.add_gate(name, "INV", [previous])
            previous = name
        netlist.mark_primary_output(previous)
    return netlist


class TestNearCriticalCounts:
    def test_single_chain_has_one_path(self):
        chain = inverter_chain(5)
        delays = np.ones(5)
        assert near_critical_path_count(chain, delays, margin=0.01) == 1

    def test_parallel_equal_paths_all_counted(self):
        netlist = build_parallel_paths(4, 3)
        delays = np.ones(netlist.n_gates)
        assert near_critical_path_count(netlist, delays, margin=1e-6) == 4

    def test_margin_excludes_faster_paths(self):
        netlist = build_parallel_paths(2, 3)
        delays = np.ones(netlist.n_gates)
        index = netlist.gate_index()
        # Make path 1 faster by 0.5 per gate.
        for level in range(3):
            delays[index[f"p1_g{level}"]] = 0.5
        assert near_critical_path_count(netlist, delays, margin=0.1) == 1
        assert near_critical_path_count(netlist, delays, margin=10.0) == 2

    def test_gate_count_grows_with_margin(self):
        netlist = build_parallel_paths(3, 4)
        delays = np.ones(netlist.n_gates)
        index = netlist.gate_index()
        for level in range(4):
            delays[index[f"p2_g{level}"]] = 0.8
        tight = near_critical_gate_count(netlist, delays, margin=0.01)
        loose = near_critical_gate_count(netlist, delays, margin=5.0)
        assert loose > tight

    def test_batched_delays_rejected(self):
        chain = inverter_chain(3)
        with pytest.raises(ValueError):
            near_critical_path_count(chain, np.ones((2, 3)), margin=0.1)


class TestCriticalPathExtraction:
    def path_delay(self, netlist: Netlist, delays: np.ndarray, path) -> float:
        index = netlist.gate_index()
        return float(sum(delays[index[name]] for name in path))

    def assert_is_real_path(self, netlist: Netlist, path) -> None:
        """Every consecutive pair on the path must be a fanin edge."""
        index = netlist.gate_index()
        fanins = netlist.fanin_indices()
        for driver, sink in zip(path, path[1:]):
            assert index[driver] in fanins[index[sink]], (driver, sink)

    def test_single_gate_netlist(self):
        chain = inverter_chain(1)
        assert critical_path(chain, np.array([2.0])) == ["inv0"]

    def test_chain_path_is_every_gate_in_order(self):
        chain = inverter_chain(5)
        delays = np.arange(1.0, 6.0)
        path = critical_path(chain, delays)
        assert path == [f"inv{i}" for i in range(5)]
        assert self.path_delay(chain, delays, path) == pytest.approx(
            float(max_delay(chain, delays))
        )

    def test_unequal_parallel_paths_pick_the_slow_one(self):
        netlist = build_parallel_paths(3, 4)
        delays = np.ones(netlist.n_gates)
        index = netlist.gate_index()
        for level in range(4):
            delays[index[f"p1_g{level}"]] = 2.0
        path = critical_path(netlist, delays)
        assert all(name.startswith("p1_") for name in path)

    def test_reconvergent_block_path_is_real_and_has_the_block_delay(self):
        block = random_logic_block(
            "blk", n_gates=60, depth=10, n_inputs=5, n_outputs=4, seed=3
        )
        rng = np.random.default_rng(9)
        delays = rng.uniform(0.5, 2.0, size=block.n_gates)
        path = critical_path(block, delays)
        self.assert_is_real_path(block, path)
        assert self.path_delay(block, delays, path) == pytest.approx(
            float(max_delay(block, delays))
        )

    def test_precomputed_arrivals_match_and_are_validated(self):
        block = random_logic_block(
            "blk2", n_gates=30, depth=6, n_inputs=4, n_outputs=3, seed=5
        )
        delays = np.linspace(0.5, 1.5, block.n_gates)
        arrivals = arrival_times(block, delays)
        assert critical_path(block, delays, arrivals=arrivals) == critical_path(
            block, delays
        )
        with pytest.raises(ValueError, match="shape"):
            critical_path(block, delays, arrivals=arrivals[:-1])

    def test_batched_delays_rejected(self):
        chain = inverter_chain(3)
        with pytest.raises(ValueError, match="1-D"):
            critical_path(chain, np.ones((2, 3)))


class TestPathReport:
    def test_report_fields(self):
        netlist = build_parallel_paths(3, 3)
        delays = np.ones(netlist.n_gates)
        report = path_report(netlist, delays, margin_fraction=0.05)
        assert report.delay == pytest.approx(3.0)
        assert len(report.critical_path) == 3
        assert report.n_paths_near_critical == 3
        assert report.margin == pytest.approx(0.15)

    def test_balanced_block_has_more_critical_paths_than_unbalanced(self):
        """The structural fact behind the paper's section 3.2 argument."""
        netlist = build_parallel_paths(4, 3)
        balanced = np.ones(netlist.n_gates)
        unbalanced = balanced.copy()
        index = netlist.gate_index()
        for path in range(1, 4):
            for level in range(3):
                unbalanced[index[f"p{path}_g{level}"]] = 0.7
        balanced_report = path_report(netlist, balanced)
        unbalanced_report = path_report(netlist, unbalanced)
        assert (
            unbalanced_report.n_paths_near_critical
            < balanced_report.n_paths_near_critical
        )
