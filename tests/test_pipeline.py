"""Tests for repro.pipeline (stage, pipeline, builder)."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import inverter_chain
from repro.pipeline.builder import (
    alu_decoder_pipeline,
    inverter_chain_pipeline,
    iscas_pipeline,
)
from repro.pipeline.pipeline import Pipeline
from repro.pipeline.stage import PipelineStage


class TestPipelineStage:
    def test_area_breakdown(self):
        stage = PipelineStage("s", inverter_chain(5))
        assert stage.total_area() == pytest.approx(
            stage.logic_area() + stage.register_area()
        )
        assert stage.register_area() > 0.0

    def test_flipflop_count_defaults_to_outputs(self):
        stage = PipelineStage("s", inverter_chain(5))
        assert stage.n_flipflops == 1

    def test_place_updates_region_and_gates(self):
        stage = PipelineStage("s", inverter_chain(5))
        stage.place((0.5, 0.0, 0.75, 1.0))
        xs, _ = stage.netlist.positions()
        assert np.all((xs >= 0.5) & (xs <= 0.75))
        x, y = stage.register_position
        assert 0.5 <= x <= 0.75
        assert 0.0 <= y <= 1.0

    def test_structure_queries(self):
        stage = PipelineStage("s", inverter_chain(7))
        assert stage.n_gates == 7
        assert stage.logic_depth == 7

    def test_copy_is_deep(self):
        stage = PipelineStage("s", inverter_chain(4))
        clone = stage.copy()
        clone.netlist.gate("inv0").size = 9.0
        assert stage.netlist.gate("inv0").size == pytest.approx(1.0)


class TestPipeline:
    def test_requires_stages_and_unique_names(self):
        with pytest.raises(ValueError):
            Pipeline("p", [])
        stage = PipelineStage("same", inverter_chain(3))
        with pytest.raises(ValueError):
            Pipeline("p", [stage, PipelineStage("same", inverter_chain(3))])

    def test_placement_assigns_disjoint_slices(self):
        pipeline = inverter_chain_pipeline(4, 5)
        regions = [stage.region for stage in pipeline.stages]
        for left, right in zip(regions, regions[1:]):
            assert left[2] <= right[0] + 1e-9

    def test_area_accounting(self):
        pipeline = inverter_chain_pipeline(3, 5)
        assert pipeline.total_area() == pytest.approx(pipeline.stage_areas().sum())
        assert pipeline.area_fractions().sum() == pytest.approx(1.0)
        assert pipeline.logic_area() < pipeline.total_area()

    def test_stage_lookup(self):
        pipeline = inverter_chain_pipeline(3, 5)
        assert pipeline.stage("stage1").name == "stage1"
        with pytest.raises(KeyError):
            pipeline.stage("missing")

    def test_iteration_and_len(self):
        pipeline = inverter_chain_pipeline(3, 5)
        assert len(pipeline) == 3
        assert [stage.name for stage in pipeline] == pipeline.stage_names

    def test_copy_is_deep(self):
        pipeline = inverter_chain_pipeline(2, 4)
        clone = pipeline.copy()
        clone.stages[0].netlist.gate("inv0").size = 5.0
        assert pipeline.stages[0].netlist.gate("inv0").size == pytest.approx(1.0)


class TestBuilders:
    def test_inverter_chain_pipeline_uniform(self):
        pipeline = inverter_chain_pipeline(5, 8)
        assert pipeline.n_stages == 5
        assert all(stage.logic_depth == 8 for stage in pipeline.stages)
        assert pipeline.name == "invchain_5x8"

    def test_inverter_chain_pipeline_variable_depths(self):
        pipeline = inverter_chain_pipeline(3, [4, 8, 6])
        assert [stage.logic_depth for stage in pipeline.stages] == [4, 8, 6]
        assert pipeline.name == "invchain_3xvar"

    def test_inverter_chain_pipeline_validation(self):
        with pytest.raises(ValueError):
            inverter_chain_pipeline(0, 5)
        with pytest.raises(ValueError):
            inverter_chain_pipeline(3, [4, 8])

    def test_shared_flipflop_model(self):
        ff = FlipFlopTiming(clk_to_q_stages=1.0, setup_stages=1.0)
        pipeline = inverter_chain_pipeline(3, 4, flipflop=ff)
        assert all(stage.flipflop is ff for stage in pipeline.stages)

    def test_alu_decoder_pipeline_structure(self):
        pipeline = alu_decoder_pipeline(width=4, n_address=3)
        assert pipeline.stage_names == ["alu_part1", "decoder", "alu_part2"]
        assert all(stage.n_gates > 0 for stage in pipeline.stages)

    def test_iscas_pipeline_default_matches_paper(self):
        pipeline = iscas_pipeline(["c432"])
        assert pipeline.stage_names == ["c432"]
        default = iscas_pipeline()
        assert default.stage_names == ["c3540", "c2670", "c1908", "c432"]

    def test_iscas_pipeline_validation(self):
        with pytest.raises(ValueError):
            iscas_pipeline([])
