"""Tests for repro.core.pipeline_delay (paper section 2.2)."""

import numpy as np
import pytest

from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.stage_delay import StageDelayDistribution


def make_stages(means, stds):
    return [
        StageDelayDistribution(m, s, name=f"s{i}")
        for i, (m, s) in enumerate(zip(means, stds))
    ]


class TestConstruction:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            PipelineDelayModel([])

    def test_correlation_shape_checked(self):
        stages = make_stages([1.0, 2.0], [0.1, 0.1])
        with pytest.raises(ValueError):
            PipelineDelayModel(stages, np.eye(3))

    def test_uniform_correlation_constructor(self):
        stages = make_stages([1.0, 2.0, 3.0], [0.1, 0.1, 0.1])
        model = PipelineDelayModel.with_uniform_correlation(stages, 0.5)
        assert np.allclose(np.diag(model.correlations), 1.0)
        assert model.correlations[0, 1] == pytest.approx(0.5)

    def test_uniform_correlation_validation(self):
        stages = make_stages([1.0], [0.1])
        with pytest.raises(ValueError):
            PipelineDelayModel.with_uniform_correlation(stages, 1.5)


class TestEstimation:
    def test_single_stage_passthrough(self):
        model = PipelineDelayModel(make_stages([200e-12], [10e-12]))
        estimate = model.estimate()
        assert estimate.mean == pytest.approx(200e-12)
        assert estimate.std == pytest.approx(10e-12)

    def test_jensen_lower_bound(self):
        model = PipelineDelayModel(make_stages([1.0, 2.0, 1.5], [0.2, 0.2, 0.2]))
        estimate = model.estimate()
        assert estimate.jensen_lower_bound == pytest.approx(2.0)
        assert estimate.mean >= 2.0

    def test_identical_correlated_stages_collapse(self):
        stages = make_stages([1.0] * 4, [0.2] * 4)
        model = PipelineDelayModel.with_uniform_correlation(stages, 1.0)
        estimate = model.estimate()
        assert estimate.mean == pytest.approx(1.0)
        assert estimate.std == pytest.approx(0.2)

    def test_independent_stages_against_samples(self, rng):
        means = np.array([190e-12, 195e-12, 200e-12, 188e-12, 192e-12])
        stds = np.array([4e-12, 5e-12, 4.5e-12, 6e-12, 5e-12])
        model = PipelineDelayModel(make_stages(means, stds))
        estimate = model.estimate()
        samples = model.sample(300000, rng)
        assert estimate.mean == pytest.approx(samples.mean(), rel=0.005)
        assert estimate.std == pytest.approx(samples.std(ddof=1), rel=0.08)

    def test_correlated_stages_against_samples(self, rng):
        means = np.full(6, 200e-12)
        stds = np.full(6, 10e-12)
        model = PipelineDelayModel.with_uniform_correlation(
            make_stages(means, stds), 0.6
        )
        estimate = model.estimate()
        samples = model.sample(300000, rng)
        assert estimate.mean == pytest.approx(samples.mean(), rel=0.005)
        assert estimate.std == pytest.approx(samples.std(ddof=1), rel=0.06)

    def test_more_stages_increase_mean_and_reduce_variability(self):
        stage = StageDelayDistribution(200e-12, 10e-12)
        short = PipelineDelayModel([stage] * 2).estimate()
        long = PipelineDelayModel([stage] * 12).estimate()
        assert long.mean > short.mean
        assert long.variability < short.variability

    def test_correlation_reduces_pipeline_mean(self):
        stages = make_stages([200e-12] * 5, [10e-12] * 5)
        independent = PipelineDelayModel(stages).estimate()
        correlated = PipelineDelayModel.with_uniform_correlation(stages, 0.9).estimate()
        assert correlated.mean < independent.mean


class TestEstimateQueries:
    def test_yield_at_and_delay_at_yield_are_inverse(self):
        model = PipelineDelayModel(make_stages([200e-12] * 3, [8e-12] * 3))
        estimate = model.estimate()
        delay = estimate.delay_at_yield(0.85)
        assert estimate.yield_at(delay) == pytest.approx(0.85, abs=1e-9)

    def test_yield_extremes(self):
        model = PipelineDelayModel(make_stages([200e-12] * 3, [8e-12] * 3))
        estimate = model.estimate()
        assert estimate.yield_at(1.0) == pytest.approx(1.0)
        assert estimate.yield_at(1e-13) == pytest.approx(0.0, abs=1e-12)

    def test_pdf_positive_near_mean(self):
        estimate = PipelineDelayModel(make_stages([200e-12] * 3, [8e-12] * 3)).estimate()
        assert estimate.pdf(estimate.mean) > 0.0

    def test_sample_validation(self, rng):
        model = PipelineDelayModel(make_stages([1.0], [0.1]))
        with pytest.raises(ValueError):
            model.sample(0, rng)

    def test_delay_at_yield_validation(self):
        estimate = PipelineDelayModel(make_stages([1.0], [0.1])).estimate()
        with pytest.raises(ValueError):
            estimate.delay_at_yield(1.2)
