"""Property-based tests (hypothesis) on the core statistical machinery.

These check the invariants the paper's derivations rely on, over broad,
randomly generated inputs: Clark's max dominates its inputs, yield models
are monotone and bounded, the design-space bounds nest correctly, and the
netlist/STA substrate preserves structural invariants under resizing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.clark import max_of_gaussians, max_of_two_gaussians
from repro.core.design_space import DesignSpace
from repro.core.stage_delay import StageDelayDistribution
from repro.core.pipeline_delay import PipelineDelayModel
from repro.core.yield_model import (
    stage_yield_budget,
    yield_correlated,
    yield_independent,
)
from repro.circuit.generators import random_logic_block
from repro.timing.delay_model import GateDelayModel
from repro.timing.sta import arrival_times, max_delay
from repro.process.technology import default_technology
from repro.process.variation import VariationModel


# Delay-like magnitudes: picoseconds expressed in seconds.
means = st.floats(min_value=1e-11, max_value=1e-9)
sigmas = st.floats(min_value=0.0, max_value=5e-11)
correlations = st.floats(min_value=-0.999, max_value=0.999)
probabilities = st.floats(min_value=0.01, max_value=0.99)


class TestClarkProperties:
    @given(means, sigmas, means, sigmas, correlations)
    @settings(max_examples=200, deadline=None)
    def test_max_mean_dominates_inputs(self, m1, s1, m2, s2, rho):
        result = max_of_two_gaussians(m1, s1, m2, s2, rho)
        assert result.mean >= max(m1, m2) - 1e-15
        assert result.std >= 0.0

    @given(means, sigmas, means, sigmas, correlations)
    @settings(max_examples=200, deadline=None)
    def test_max_is_symmetric(self, m1, s1, m2, s2, rho):
        forward = max_of_two_gaussians(m1, s1, m2, s2, rho)
        backward = max_of_two_gaussians(m2, s2, m1, s1, rho)
        # When one variable dominates by many sigmas the max's variance is
        # computed as a difference of nearly equal quantities, so allow an
        # absolute floor proportional to the input scale in the sigma check.
        sigma_floor = 1e-6 * (s1 + s2) + 1e-18
        assert forward.mean == pytest.approx(backward.mean, rel=1e-7, abs=1e-18)
        assert forward.std == pytest.approx(backward.std, rel=1e-6, abs=sigma_floor)

    @given(means, sigmas, means, sigmas, correlations, st.floats(min_value=1e-12, max_value=1e-10))
    @settings(max_examples=100, deadline=None)
    def test_shift_invariance(self, m1, s1, m2, s2, rho, shift):
        """max(X1+c, X2+c) = max(X1, X2) + c."""
        base = max_of_two_gaussians(m1, s1, m2, s2, rho)
        shifted = max_of_two_gaussians(m1 + shift, s1, m2 + shift, s2, rho)
        # As in the symmetry test, the sigma of a strongly dominated max is a
        # near-cancellation, so give it an absolute floor tied to the scale.
        sigma_floor = 1e-6 * (s1 + s2) + 1e-16
        assert shifted.mean == pytest.approx(base.mean + shift, rel=1e-9)
        assert shifted.std == pytest.approx(base.std, rel=1e-6, abs=sigma_floor)

    @given(
        st.lists(st.tuples(means, sigmas), min_size=2, max_size=8),
        st.floats(min_value=0.0, max_value=0.95),
    )
    @settings(max_examples=100, deadline=None)
    def test_n_variable_max_dominates_means(self, stages, rho):
        mu = np.array([m for m, _ in stages])
        sd = np.array([s for _, s in stages])
        corr = np.full((len(stages), len(stages)), rho)
        np.fill_diagonal(corr, 1.0)
        result = max_of_gaussians(mu, sd, corr)
        assert result.mean >= mu.max() - 1e-15
        assert np.isfinite(result.std)

    @given(st.lists(st.tuples(means, sigmas), min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_adding_a_variable_never_reduces_the_mean(self, stages):
        mu = np.array([m for m, _ in stages])
        sd = np.array([s for _, s in stages])
        full = max_of_gaussians(mu, sd)
        reduced = max_of_gaussians(mu[:-1], sd[:-1])
        # True for the exact max; Clark's moment matching can violate it by a
        # sliver (it replaces intermediate maxes with Gaussians), so allow a
        # small relative slack of the order of the approximation error.
        assert full.mean >= reduced.mean * (1.0 - 5e-3)


class TestYieldProperties:
    @given(
        st.lists(st.tuples(means, st.floats(min_value=1e-13, max_value=5e-11)),
                 min_size=1, max_size=8),
        st.floats(min_value=5e-11, max_value=2e-9),
    )
    @settings(max_examples=150, deadline=None)
    def test_independent_yield_bounded_and_below_worst_stage(self, stages, target):
        distributions = [StageDelayDistribution(m, s) for m, s in stages]
        value = yield_independent(distributions, target)
        assert 0.0 <= value <= 1.0
        worst_stage = min(d.yield_at(target) for d in distributions)
        assert value <= worst_stage + 1e-12

    @given(
        st.lists(st.tuples(means, st.floats(min_value=1e-13, max_value=5e-11)),
                 min_size=1, max_size=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_yield_monotone_in_target(self, stages):
        distributions = [StageDelayDistribution(m, s) for m, s in stages]
        targets = np.linspace(5e-11, 1.5e-9, 7)
        values = [yield_independent(distributions, t) for t in targets]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @given(
        st.lists(st.tuples(means, st.floats(min_value=1e-13, max_value=5e-11)),
                 min_size=2, max_size=6),
        st.floats(min_value=0.0, max_value=0.99),
        st.floats(min_value=1e-10, max_value=1e-9),
    )
    @settings(max_examples=100, deadline=None)
    def test_correlated_yield_bounded(self, stages, rho, target):
        distributions = [StageDelayDistribution(m, s) for m, s in stages]
        corr = np.full((len(stages), len(stages)), rho)
        np.fill_diagonal(corr, 1.0)
        value = yield_correlated(distributions, target, corr)
        assert 0.0 <= value <= 1.0

    @given(probabilities, st.integers(min_value=1, max_value=30))
    @settings(max_examples=100, deadline=None)
    def test_stage_yield_budget_roundtrip(self, pipeline_yield, n_stages):
        budget = stage_yield_budget(pipeline_yield, n_stages)
        assert budget >= pipeline_yield - 1e-12
        assert budget**n_stages == pytest.approx(pipeline_yield, rel=1e-9)

    @given(
        st.lists(st.tuples(means, st.floats(min_value=1e-13, max_value=5e-11)),
                 min_size=2, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_pipeline_estimate_mean_dominates_jensen_bound(self, stages):
        distributions = [StageDelayDistribution(m, s) for m, s in stages]
        estimate = PipelineDelayModel(distributions).estimate()
        assert estimate.mean >= estimate.jensen_lower_bound - 1e-15


class TestDesignSpaceProperties:
    @given(
        st.floats(min_value=1e-10, max_value=1e-9),
        probabilities,
        st.floats(min_value=0.0, max_value=5e-11),
        st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_equality_bound_never_looser_than_relaxed(self, target, prob, sigma, n_stages):
        space = DesignSpace(target, prob)
        relaxed = space.relaxed_upper_bound(sigma)
        equality = space.equality_bound(sigma, n_stages)
        assert equality <= relaxed + 1e-12

    @given(
        st.floats(min_value=1e-10, max_value=1e-9),
        probabilities,
        st.floats(min_value=0.0, max_value=5e-11),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_equality_bound_monotone_in_stage_count(self, target, prob, sigma, n_stages):
        space = DesignSpace(target, prob)
        assert space.equality_bound(sigma, n_stages + 1) <= space.equality_bound(
            sigma, n_stages
        ) + 1e-12


class TestSubstrateProperties:
    @given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_blocks_are_well_formed(self, n_gates, seed):
        depth = max(2, n_gates // 6)
        block = random_logic_block(
            "b", n_gates=n_gates, depth=depth, n_inputs=5, n_outputs=3, seed=seed
        )
        assert block.n_gates == n_gates
        assert block.logic_depth() == depth
        assert len(block.topological_order()) == n_gates

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=1.0, max_value=8.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_arrival_times_monotone_under_uniform_upsizing_of_loads(self, seed, factor):
        """Scaling every size by the same factor never increases path delay."""
        technology = default_technology()
        block = random_logic_block(
            "b", n_gates=30, depth=6, n_inputs=5, n_outputs=3, seed=seed
        )
        model = GateDelayModel(technology)
        base = max_delay(block, model.nominal_delays(block))
        scaled = max_delay(
            block, model.nominal_delays(block, factor * block.sizes())
        )
        assert scaled <= base + 1e-15

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_arrival_times_nonnegative_and_bounded_by_sum(self, seed):
        technology = default_technology()
        block = random_logic_block(
            "b", n_gates=25, depth=5, n_inputs=4, n_outputs=3, seed=seed
        )
        delays = GateDelayModel(technology).nominal_delays(block)
        arrivals = arrival_times(block, delays)
        assert np.all(arrivals >= 0.0)
        assert arrivals.max() <= delays.sum() + 1e-18
