"""The resilient execution engine: isolation, retry, timeout, resume, chaos.

Every recovery path is driven by deterministic injected faults
(:class:`repro.robust.faults.FaultPlan`), never by real flakiness, so these
tests replay bit-identically.  The process-pool tests spawn real worker
processes (including genuinely killed ones); the slowest of them carry the
strict ``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.api.session import Session
from repro.api.spec import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec
from repro.api.sweep import ScenarioSweep
from repro.robust import (
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    SweepExecutionError,
    execute_tasks,
)
from repro.robust.executor import SweepTask
from repro.verify.scenarios import builtin_corpus

AXES = {"pipeline.n_stages": [2, 3], "variation.sigma_scale": [0.5, 1.0]}
FAST_RETRY = ExecutionPolicy(max_retries=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def base_spec() -> StudySpec:
    return StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=200, seed=11),
    )


@pytest.fixture(scope="module")
def reference(base_spec):
    """Uninterrupted serial run under the legacy (no-policy) contract."""
    return ScenarioSweep(base_spec, AXES).run()


def point_identity(result):
    """Everything about a result's points except wall-clock trace fields."""
    return [(p.index, p.coords, p.spec, p.report) for p in result]


class TestSerialEngine:
    def test_failure_is_isolated_not_fatal(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=2, kind="raise", attempts=-1),))
        result = ScenarioSweep(base_spec, AXES).run(
            policy=ExecutionPolicy(), fault_plan=plan
        )
        assert [p.index for p in result.ok] == [0, 1, 3]
        assert result.reports() == [
            reference[0].report, reference[1].report, reference[3].report,
        ]
        (failure,) = result.failures
        assert failure.index == 2
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 1 and failure.elapsed >= 0.0
        assert "InjectedFault" in failure.traceback
        assert failure.exception is not None  # serial keeps the live object

    def test_flaky_point_recovers_via_retry(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=0, kind="raise", attempts=2),))
        result = ScenarioSweep(base_spec, AXES).run(
            policy=FAST_RETRY, fault_plan=plan
        )
        assert not result.failures
        assert result.reports() == reference.reports()
        assert result.trace.n_retries == 2

    def test_retries_exhausted_becomes_structured_failure(self, base_spec):
        plan = FaultPlan((FaultSpec(point=1, kind="raise", attempts=-1),))
        result = ScenarioSweep(base_spec, AXES).run(
            policy=FAST_RETRY, fault_plan=plan
        )
        (failure,) = result.failures
        assert failure.attempts == FAST_RETRY.max_attempts

    def test_strict_contract_raises_with_cause(self, base_spec):
        plan = FaultPlan((FaultSpec(point=0, kind="raise", attempts=-1),))
        sweep = ScenarioSweep(base_spec, AXES)
        result = sweep.run(policy=ExecutionPolicy(), fault_plan=plan)
        with pytest.raises(SweepExecutionError) as excinfo:
            result.raise_on_failure()
        assert excinfo.value.failures[0].index == 0
        assert type(excinfo.value.__cause__).__name__ == "InjectedFault"

    def test_serial_kill_surrogate_and_corrupt_are_recoverable(
        self, base_spec, reference
    ):
        plan = FaultPlan(
            (
                FaultSpec(point=0, kind="kill", attempts=1),
                FaultSpec(point=3, kind="corrupt", attempts=1),
            )
        )
        result = ScenarioSweep(base_spec, AXES).run(
            policy=FAST_RETRY, fault_plan=plan
        )
        assert not result.failures
        assert result.reports() == reference.reports()

    def test_serial_timeout_is_post_hoc(self, base_spec):
        """Serial timeouts cannot preempt, but they consume the attempt."""
        plan = FaultPlan((FaultSpec(point=0, kind="timeout", attempts=-1, delay=0.3),))
        policy = ExecutionPolicy(point_timeout=0.05, backoff_base=0.0)
        result = ScenarioSweep(base_spec, AXES).run(policy=policy, fault_plan=plan)
        (failure,) = result.failures
        assert failure.is_timeout and failure.index == 0
        assert result.trace.n_timeouts == 1
        assert [p.index for p in result.ok] == [1, 2, 3]

    def test_sweep_deadline_returns_partial_results(self, base_spec):
        plan = FaultPlan(
            tuple(
                FaultSpec(point=i, kind="timeout", attempts=-1, delay=0.4)
                for i in range(4)
            )
        )
        policy = ExecutionPolicy(sweep_deadline=0.7)
        result = ScenarioSweep(base_spec, AXES).run(policy=policy, fault_plan=plan)
        assert result.trace.deadline_hit
        assert 0 < len(result.ok) < 4
        assert all(f.is_deadline and f.attempts == 0 for f in result.failures)
        assert len(result.ok) + len(result.failures) == 4

    def test_trace_records_serial_execution(self, base_spec):
        result = ScenarioSweep(base_spec, AXES).run(policy=ExecutionPolicy())
        trace = result.trace
        assert trace.pool_kind == "serial"
        assert trace.fallback_reason is None
        assert (trace.n_points, trace.n_completed, trace.n_failed) == (4, 4, 0)
        assert trace.elapsed > 0.0
        assert "elapsed" not in trace.deterministic_dict()
        assert trace.deterministic_dict() == {
            k: v for k, v in trace.to_dict().items() if k != "elapsed"
        }


class TestParallelEngine:
    def test_worker_crash_is_retried(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=1, kind="raise", attempts=1),))
        result = ScenarioSweep(base_spec, AXES).run(
            n_jobs=2, policy=FAST_RETRY, fault_plan=plan
        )
        assert not result.failures
        assert result.reports() == reference.reports()
        assert result.trace.pool_kind == "process"
        assert result.trace.n_retries >= 1

    def test_corrupt_result_caught_by_validation(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=3, kind="corrupt", attempts=1),))
        result = ScenarioSweep(base_spec, AXES).run(
            n_jobs=2, policy=FAST_RETRY, fault_plan=plan
        )
        assert not result.failures
        assert result.reports() == reference.reports()

    @pytest.mark.slow
    def test_killed_worker_respawns_pool_and_recovers(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=1, kind="kill", attempts=1),))
        result = ScenarioSweep(base_spec, AXES).run(
            n_jobs=2, policy=FAST_RETRY, fault_plan=plan
        )
        assert not result.failures
        assert result.reports() == reference.reports()
        assert result.trace.n_worker_respawns >= 1

    @pytest.mark.slow
    def test_preemptive_timeout_spares_innocent_points(self, base_spec, reference):
        plan = FaultPlan((FaultSpec(point=0, kind="timeout", attempts=-1, delay=5.0),))
        policy = ExecutionPolicy(point_timeout=0.8, backoff_base=0.0)
        result = ScenarioSweep(base_spec, AXES).run(
            n_jobs=2, policy=policy, fault_plan=plan
        )
        (failure,) = result.failures
        assert failure.is_timeout and failure.index == 0
        assert [p.index for p in result.ok] == [1, 2, 3]
        assert result.reports() == [
            reference[1].report, reference[2].report, reference[3].report,
        ]
        assert result.trace.n_timeouts == 1
        assert result.trace.n_worker_respawns >= 1

    def test_parallel_matches_serial_under_faults(self, base_spec):
        plan = FaultPlan(
            (
                FaultSpec(point=0, kind="raise", attempts=1),
                FaultSpec(point=2, kind="raise", attempts=-1),
            )
        )
        serial = ScenarioSweep(base_spec, AXES).run(
            policy=FAST_RETRY, fault_plan=plan
        )
        parallel = ScenarioSweep(base_spec, AXES).run(
            n_jobs=2, policy=FAST_RETRY, fault_plan=plan
        )
        assert point_identity(serial) == point_identity(parallel)
        assert [f.index for f in serial.failures] == [
            f.index for f in parallel.failures
        ] == [2]


class TestCheckpointResume:
    def test_killed_then_resumed_is_bit_identical(
        self, tmp_path, base_spec, reference
    ):
        """Interrupt after K points; the resumed sweep must equal the
        uninterrupted serial reference exactly (modulo wall-clock trace)."""
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        sweep = ScenarioSweep(base_spec, AXES)
        tasks = sweep.tasks(Session())
        # "kill" the first run after two points: only they reach the store
        execute_tasks(tasks[:2], Session(), policy=policy)
        resumed = ScenarioSweep(base_spec, AXES).run(
            session=Session(), policy=policy
        )
        assert resumed.trace.checkpoint_hits == 2
        assert resumed.trace.checkpoint_writes == 2
        assert not resumed.failures
        assert point_identity(resumed) == point_identity(reference)

    def test_deadline_interrupted_run_resumes_exactly(
        self, tmp_path, base_spec, reference
    ):
        """A deadline-truncated checkpointed run + a resume = the full answer."""
        slow_plan = FaultPlan(
            tuple(
                FaultSpec(point=i, kind="timeout", attempts=-1, delay=0.25)
                for i in range(4)
            )
        )
        interrupted = ScenarioSweep(base_spec, AXES).run(
            policy=ExecutionPolicy(
                checkpoint_dir=str(tmp_path), sweep_deadline=0.4
            ),
            fault_plan=slow_plan,
        )
        assert interrupted.trace.deadline_hit
        resumed = ScenarioSweep(base_spec, AXES).run(
            session=Session(),
            policy=ExecutionPolicy(checkpoint_dir=str(tmp_path)),
        )
        assert resumed.trace.checkpoint_hits == len(interrupted.ok)
        assert point_identity(resumed) == point_identity(reference)

    @pytest.mark.slow
    def test_parallel_resume_matches_serial_reference(
        self, tmp_path, base_spec, reference
    ):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        sweep = ScenarioSweep(base_spec, AXES)
        execute_tasks(sweep.tasks(Session())[:2], Session(), policy=policy)
        resumed = ScenarioSweep(base_spec, AXES).run(
            session=Session(), n_jobs=2, policy=policy
        )
        assert resumed.trace.checkpoint_hits == 2
        assert point_identity(resumed) == point_identity(reference)

    def test_deferred_seeds_resolve_before_keying(self, tmp_path, base_spec):
        """None-seed sweeps under different session roots must not collide."""
        spec = base_spec.replace(analysis=base_spec.analysis.with_seed(None))
        axes = {"pipeline.n_stages": [2, 3]}
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        seven = ScenarioSweep(spec, axes).run(
            session=Session(root_seed=7), policy=policy
        )
        eight = ScenarioSweep(spec, axes).run(
            session=Session(root_seed=8), policy=policy
        )
        assert eight.trace.checkpoint_hits == 0  # no cross-session poisoning
        assert seven.reports() != eight.reports()


@pytest.mark.slow
@pytest.mark.conformance
class TestCorpusChaos:
    """Acceptance gate: seeded faults over the 27-scenario corpus sweep.

    Crash, slow-point and corrupt faults are injected flakily (first
    attempt) across the committed conformance corpus plus one persistent
    crash; the sweep must finish with zero lost successful points and
    exactly the persistent point as a structured failure, every surviving
    report agreeing exactly with the session's direct answer.
    """

    PERSISTENT_POINT = 5
    SEED = 20050307

    def test_zero_lost_successful_points(self):
        corpus = builtin_corpus()
        session = Session()
        tasks = [
            SweepTask(index=i, coords=(("scenario", s.name),), spec=s.spec)
            for i, s in enumerate(corpus)
        ]
        flaky = FaultPlan.seeded(
            self.SEED,
            len(tasks),
            rate=0.5,
            kinds=("raise", "timeout", "corrupt"),
            attempts=1,
            delay=0.02,
        )
        assert len(flaky) > 0
        plan = FaultPlan(
            (FaultSpec(point=self.PERSISTENT_POINT, kind="raise", attempts=-1),)
            + flaky.faults,
            seed=self.SEED,
        )
        points, failures, trace = execute_tasks(
            tasks, session, policy=FAST_RETRY, fault_plan=plan
        )
        assert [f.index for f in failures] == [self.PERSISTENT_POINT]
        assert failures[0].error_type == "InjectedFault"
        expected_ok = [i for i in range(len(tasks)) if i != self.PERSISTENT_POINT]
        assert [p.index for p in points] == expected_ok
        # zero lost successes: every surviving report is the session's answer
        for point in points:
            assert point.report == session.run(point.spec)
        # raise/corrupt flaky faults fail their first attempt and must have
        # retried; timeout faults (no point_timeout set) just run slow and
        # succeed first try
        retried = {
            f.point
            for f in flaky.faults
            if f.kind in ("raise", "corrupt") and f.point != self.PERSISTENT_POINT
        }
        assert trace.n_retries >= len(retried)
        assert trace.fault_plan_seed == self.SEED


class TestTimeoutExcludesStoreIO:
    """The serial-timeout accounting bugfix.

    The serial engine cannot preempt an attempt, so it checks
    ``point_timeout`` after the attempt returns -- but before the fix the
    clock included the session's checkpoint-store read-through I/O, so a
    healthy point in front of a slow (network, cold-cache) store timed out
    spuriously.  The attempt clock now subtracts ``Session.store_io_seconds``
    spent inside the attempt.
    """

    def test_slow_session_store_does_not_trip_point_timeout(
        self, base_spec, tmp_path
    ):
        import time as time_module

        from repro.robust import CheckpointStore

        class SlowStore(CheckpointStore):
            """A store whose every get/put stalls longer than the timeout."""

            def __init__(self, root, delay):
                super().__init__(root)
                self.delay = delay

            def get(self, spec):
                time_module.sleep(self.delay)
                return super().get(spec)

            def put(self, spec, report):
                time_module.sleep(self.delay)
                return super().put(spec, report)

        # evaluation takes ~10ms; each point pays ~0.8s of store I/O
        # (one miss + one write), far beyond the 0.4s point budget
        session = Session(store=SlowStore(tmp_path, delay=0.4))
        policy = ExecutionPolicy(point_timeout=0.4)
        result = ScenarioSweep(base_spec, AXES).run(
            session=session, policy=policy
        )
        assert not result.failures
        assert result.trace.n_timeouts == 0
        assert len(result) == 4
        assert session.store_io_seconds > 0.4  # the I/O genuinely happened

    def test_genuinely_slow_evaluation_still_times_out(self, base_spec):
        plan = FaultPlan((FaultSpec(point=0, kind="timeout", attempts=-1, delay=0.3),))
        policy = ExecutionPolicy(point_timeout=0.1)
        result = ScenarioSweep(base_spec, AXES).run(policy=policy, fault_plan=plan)
        assert [f.index for f in result.failures] == [0]
        assert result.failures[0].is_timeout
        assert result.trace.n_timeouts >= 1
