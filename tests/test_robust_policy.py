"""ExecutionPolicy, FaultPlan and CheckpointStore: the robust layer's data."""

from __future__ import annotations

import json
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import pytest

from repro.api.session import Session
from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
    VariationSpec,
)
from repro.robust import (
    CheckpointStore,
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    apply_fault,
    resolved_store_spec,
    spec_digest,
)


@pytest.fixture
def study_spec() -> StudySpec:
    return StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=200, seed=11),
    )


@pytest.fixture
def design_spec() -> DesignStudySpec:
    return DesignStudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        design=DesignSpec(optimizer="balanced"),
        validation=AnalysisSpec(n_samples=200, seed=11),
    )


class TestExecutionPolicy:
    def test_defaults_mean_legacy_behaviour(self):
        policy = ExecutionPolicy()
        assert policy.max_attempts == 1
        assert policy.point_timeout is None
        assert policy.sweep_deadline is None
        assert policy.checkpoint_dir is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_jitter": 1.0},
            {"backoff_jitter": -0.1},
            {"point_timeout": 0.0},
            {"sweep_deadline": -1.0},
            {"retry_seed": -3},
        ],
    )
    def test_validation_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = ExecutionPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.3,
            backoff_jitter=0.0,
        )
        assert policy.backoff_delay(0, 1) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 2) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 5) == pytest.approx(0.3)  # capped

    def test_jitter_is_seed_derived_and_replayable(self):
        policy = ExecutionPolicy(backoff_jitter=0.5, retry_seed=7)
        delays = [policy.backoff_delay(3, 2) for _ in range(3)]
        assert len(set(delays)) == 1  # same (point, attempt) -> same delay
        assert policy.backoff_delay(3, 2) != policy.backoff_delay(4, 2)
        assert (
            policy.backoff_delay(3, 2)
            != policy.replace(retry_seed=8).backoff_delay(3, 2)
        )
        base = policy.replace(backoff_jitter=0.0).backoff_delay(3, 2)
        assert abs(policy.backoff_delay(3, 2) - base) <= 0.5 * base

    def test_zero_base_disables_backoff(self):
        assert ExecutionPolicy(backoff_base=0.0).backoff_delay(0, 3) == 0.0

    def test_json_round_trip(self, tmp_path):
        policy = ExecutionPolicy(
            max_retries=3, point_timeout=2.5, checkpoint_dir=str(tmp_path)
        )
        assert ExecutionPolicy.from_json(policy.to_json()) == policy
        with pytest.raises(ValueError, match="unknown ExecutionPolicy field"):
            ExecutionPolicy.from_dict({"max_retries": 1, "bogus": 2})


class TestFaultPlan:
    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(point=0, kind="explode")
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(point=0, kind="raise", attempts=0)
        with pytest.raises(ValueError, match="point"):
            FaultSpec(point=-1, kind="raise")

    def test_applies_window(self):
        flaky = FaultSpec(point=0, kind="raise", attempts=1)
        persistent = FaultSpec(point=0, kind="raise", attempts=-1)
        assert flaky.applies(1) and not flaky.applies(2)
        assert persistent.applies(1) and persistent.applies(99)

    def test_fault_for_matches_point_and_attempt(self):
        plan = FaultPlan(
            (
                FaultSpec(point=1, kind="raise", attempts=2),
                FaultSpec(point=3, kind="timeout", attempts=-1, delay=0.5),
            )
        )
        assert plan.fault_for(1, 1).kind == "raise"
        assert plan.fault_for(1, 3) is None
        assert plan.fault_for(3, 10).delay == 0.5
        assert plan.fault_for(0, 1) is None
        assert plan.faulted_points() == (1, 3)

    def test_seeded_plans_are_replayable(self):
        a = FaultPlan.seeded(42, 50, rate=0.3, kinds=("raise", "corrupt"))
        b = FaultPlan.seeded(42, 50, rate=0.3, kinds=("raise", "corrupt"))
        assert a == b
        assert 0 < len(a) < 50
        assert FaultPlan.seeded(43, 50, rate=0.3, kinds=("raise", "corrupt")) != a

    def test_json_round_trip(self):
        plan = FaultPlan.seeded(7, 20, rate=0.5, kinds=("raise", "timeout"))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_apply_fault_raise_and_serial_kill(self):
        with pytest.raises(InjectedFault):
            apply_fault(FaultSpec(point=0, kind="raise"), parallel=False)
        with pytest.raises(InjectedFault, match="serial surrogate"):
            apply_fault(FaultSpec(point=0, kind="kill"), parallel=False)
        assert apply_fault(FaultSpec(point=0, kind="corrupt")) is True
        assert apply_fault(None) is False
        assert apply_fault(FaultSpec(point=0, kind="timeout", delay=0.0)) is False


class TestCheckpointStore:
    def test_digest_excludes_presentation_fields(self, study_spec):
        renamed = study_spec.replace(name="anything-else")
        retargeted = study_spec.replace(target_yield=0.9)
        assert spec_digest(study_spec) == spec_digest(renamed)
        assert spec_digest(study_spec) == spec_digest(retargeted)
        changed = study_spec.replace(
            analysis=study_spec.analysis.with_seed(12)
        )
        assert spec_digest(study_spec) != spec_digest(changed)

    def test_digest_separates_study_and_design_kinds(self, study_spec, design_spec):
        assert spec_digest(study_spec) != spec_digest(design_spec)
        with pytest.raises(TypeError, match="checkpointable specs"):
            spec_digest(study_spec.analysis)

    def test_resolved_store_spec_bakes_in_the_session_seed(self, study_spec):
        deferred = study_spec.replace(
            analysis=study_spec.analysis.with_seed(None)
        )
        resolved = resolved_store_spec(deferred, Session(root_seed=7))
        assert resolved.analysis.seed == 7
        # different sessions must key differently, or entries would collide
        other = resolved_store_spec(deferred, Session(root_seed=8))
        assert spec_digest(resolved) != spec_digest(other)
        # concrete seeds pass through untouched
        assert resolved_store_spec(study_spec, Session(root_seed=7)) is study_spec

    def test_put_get_round_trip_is_exact(self, tmp_path, study_spec):
        session = Session()
        report = session.run(study_spec)
        store = CheckpointStore(tmp_path)
        digest = store.put(study_spec, report)
        assert study_spec in store
        assert len(store) == 1 and store.digests() == [digest]
        assert store.get(study_spec) == report
        assert (store.hits, store.writes) == (1, 1)

    def test_design_reports_round_trip(self, tmp_path, design_spec):
        session = Session()
        report = session.run(design_spec)
        store = CheckpointStore(tmp_path)
        store.put(design_spec, report)
        assert store.get(design_spec) == report

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path, study_spec):
        store = CheckpointStore(tmp_path)
        assert store.get(study_spec) is None
        path = store.path_for(store.digest(study_spec))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{ not json")
        assert store.get(study_spec) is None
        path.write_text(json.dumps({"kind": "design", "report": {}}))
        assert store.get(study_spec) is None  # kind mismatch
        assert store.misses == 3

    def test_clear_removes_everything(self, tmp_path, study_spec):
        session = Session()
        store = CheckpointStore(tmp_path)
        store.put(study_spec, session.run(study_spec))
        assert store.clear() == 1
        assert len(store) == 0


class TestSessionStoreReadThrough:
    def test_analyze_reads_through_and_writes_back(self, tmp_path, study_spec):
        store = CheckpointStore(tmp_path)
        first = Session(store=store)
        report = first.analyze(study_spec)
        assert (first.store_hits, first.store_writes) == (0, 1)
        # a brand-new session (empty in-memory caches) answers from disk
        second = Session(store=store)
        assert second.analyze(study_spec) == report
        assert (second.store_hits, second.store_writes) == (1, 0)
        assert second.cache_misses == 0  # no characterisation was rebuilt
        # and the in-memory cache now fronts the store
        second.analyze(study_spec)
        assert second.store_hits == 1

    def test_design_reads_through(self, tmp_path, design_spec):
        store = CheckpointStore(tmp_path)
        report = Session(store=store).design(design_spec)
        fresh = Session(store=store)
        assert fresh.design(design_spec) == report
        assert (fresh.store_hits, fresh.store_writes) == (1, 0)

    def test_sessions_without_store_are_unaffected(self, study_spec):
        session = Session()
        session.analyze(study_spec)
        assert (session.store_hits, session.store_writes) == (0, 0)

    def test_clear_resets_store_counters(self, tmp_path, study_spec):
        store = CheckpointStore(tmp_path)
        session = Session(store=store)
        session.analyze(study_spec)
        session.clear()
        assert (session.store_hits, session.store_writes) == (0, 0)


def _hammer_put(args):
    """Process-pool entrypoint: many puts of one digest against a shared root.

    Each worker process builds its own ``CheckpointStore`` over the same
    directory -- exactly how shard workers share a store -- so the atomic
    tmp-file naming must hold across pids, not just threads.
    """
    root, n_puts = args
    from repro.api.session import Session
    from repro.api.spec import AnalysisSpec, PipelineSpec, StudySpec
    from repro.robust import CheckpointStore

    spec = StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=200, seed=11),
    )
    store = CheckpointStore(root)
    report = Session().run(spec)
    for _ in range(n_puts):
        store.put(spec, report)
    return n_puts


class TestCheckpointStoreConcurrency:
    """The tmp-path collision bugfix: concurrent writers of one digest.

    Before the fix every writer used the same temp name, so two writers
    materialising the same digest could interleave open/write/replace and
    publish a torn file (or crash on a vanished temp path).  Now every
    writer gets a pid+thread+counter-unique temp file and the losing side
    of a replace race is tolerated.
    """

    def test_threaded_writers_of_same_digest_never_collide(
        self, tmp_path, study_spec
    ):
        store = CheckpointStore(tmp_path)
        report = Session().run(study_spec)
        n_threads, n_puts = 8, 25
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(n_puts):
                store.put(study_spec, report)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            futures = [pool.submit(hammer) for _ in range(n_threads)]
            for future in futures:
                future.result()

        # every write was counted, exactly one entry exists, it parses,
        # and no temp file leaked
        assert store.writes == n_threads * n_puts
        assert len(store) == 1
        assert store.get(study_spec) == report
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_cross_process_writers_of_same_digest(self, tmp_path, study_spec):
        n_workers, n_puts = 3, 10
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                done = list(
                    pool.map(
                        _hammer_put,
                        [(str(tmp_path), n_puts)] * n_workers,
                    )
                )
        except (OSError, PermissionError) as exc:
            pytest.skip(f"process pools unavailable here: {exc}")
        assert done == [n_puts] * n_workers
        store = CheckpointStore(tmp_path)
        assert len(store) == 1
        assert store.get(study_spec) is not None
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_counters_are_exact_under_threaded_readers(
        self, tmp_path, study_spec
    ):
        store = CheckpointStore(tmp_path)
        store.put(study_spec, Session().run(study_spec))
        n_threads, n_gets = 8, 25
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(n_gets):
                assert store.get(study_spec) is not None

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(hammer) for _ in range(n_threads)]:
                future.result()
        assert store.hits == n_threads * n_gets
        assert store.misses == 0


class TestSessionCounterThreadSafety:
    """The ``Session.stats()`` read-modify-write bugfix.

    The serve bridge drives one session from a thread pool; unguarded
    ``self.cache_hits += 1`` increments lost updates under contention, so
    ``/v1/stats`` undercounted.  All counter bumps now go through one lock;
    these tests assert *exact* totals, which lost updates cannot produce.
    """

    def test_cache_hit_counter_is_exact_under_threads(self, study_spec):
        session = Session()
        # Warm the expensive intermediate once; every further call is
        # exactly one cache hit (session.run's report memo would answer
        # without touching the counters, so hammer the counted layer).
        args = (study_spec.pipeline, study_spec.variation, study_spec.analysis)
        session.montecarlo_run(*args)
        before = session.stats()["cache_hits"]
        session.montecarlo_run(*args)
        assert session.stats()["cache_hits"] == before + 1

        before = session.stats()["cache_hits"]
        n_threads, n_runs = 8, 50
        start = threading.Barrier(n_threads)

        def hammer():
            start.wait()
            for _ in range(n_runs):
                session.montecarlo_run(*args)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [pool.submit(hammer) for _ in range(n_threads)]:
                future.result()
        gained = session.stats()["cache_hits"] - before
        assert gained == n_threads * n_runs  # lost updates would undercount

    def test_store_counters_are_exact_under_threads(self, tmp_path, study_spec):
        store = CheckpointStore(tmp_path)
        Session(store=store).analyze(study_spec)  # materialise the entry

        session = Session(store=store)
        session.analyze(study_spec)  # one disk hit; now the in-memory cache fronts it
        assert session.stats()["store_hits"] == 1
        assert session.stats()["store_io_seconds"] > 0.0

        n_threads, n_runs = 8, 10
        fresh = [Session(store=store) for _ in range(n_threads)]
        start = threading.Barrier(n_threads)

        def hammer(s):
            start.wait()
            for _ in range(n_runs):
                s.analyze(study_spec)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for future in [
                pool.submit(hammer, s) for s in fresh
            ]:
                future.result()
        # each fresh session takes exactly one disk hit, then memoises
        assert [s.stats()["store_hits"] for s in fresh] == [1] * n_threads
        assert all(s.stats()["store_writes"] == 0 for s in fresh)

    def test_stats_exposes_store_io_seconds(self, study_spec):
        session = Session()
        assert session.stats()["store_io_seconds"] == 0.0
        session.run(study_spec)
        assert session.stats()["store_io_seconds"] == 0.0  # no store attached
