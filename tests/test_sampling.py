"""Tests for repro.process.sampling."""

import numpy as np
import pytest

from repro.process.sampling import ParameterSampler
from repro.process.technology import default_technology
from repro.process.variation import VariationModel


@pytest.fixture
def sampler_inputs():
    n_devices = 20
    sizes = np.ones(n_devices)
    x = np.linspace(0.05, 0.95, n_devices)
    y = np.full(n_devices, 0.5)
    return sizes, x, y


class TestSampling:
    def test_shapes(self, technology, rng, sampler_inputs):
        sizes, x, y = sampler_inputs
        sampler = ParameterSampler(technology, VariationModel.combined())
        samples = sampler.sample(sizes, x, y, 200, rng)
        assert samples.vth.shape == (200, 20)
        assert samples.length.shape == (200, 20)
        assert samples.inter_die_vth_shift.shape == (200,)
        assert samples.n_samples == 200
        assert samples.n_devices == 20

    def test_mean_vth_near_nominal(self, technology, rng, sampler_inputs):
        sizes, x, y = sampler_inputs
        sampler = ParameterSampler(technology, VariationModel.combined())
        samples = sampler.sample(sizes, x, y, 4000, rng)
        assert samples.vth.mean() == pytest.approx(technology.vth0, abs=0.003)

    def test_inter_only_gives_identical_devices(self, technology, rng, sampler_inputs):
        sizes, x, y = sampler_inputs
        sampler = ParameterSampler(technology, VariationModel.inter_only(0.03))
        samples = sampler.sample(sizes, x, y, 100, rng)
        # Every device on a die sees the same Vth in the inter-only model.
        spread_within_die = samples.vth.std(axis=1)
        assert np.all(spread_within_die < 1e-12)

    def test_intra_random_only_gives_independent_devices(
        self, technology, rng, sampler_inputs
    ):
        sizes, x, y = sampler_inputs
        sampler = ParameterSampler(technology, VariationModel.intra_random_only(0.03))
        samples = sampler.sample(sizes, x, y, 20000, rng)
        corr = np.corrcoef(samples.vth[:, 0], samples.vth[:, 1])[0, 1]
        assert abs(corr) < 0.03

    def test_random_sigma_scales_with_size(self, technology, rng):
        variation = VariationModel.intra_random_only(0.04)
        sampler = ParameterSampler(technology, variation)
        sizes = np.array([1.0, 4.0])
        x = np.array([0.3, 0.7])
        y = np.array([0.5, 0.5])
        samples = sampler.sample(sizes, x, y, 30000, rng)
        sigma_small = samples.vth[:, 0].std()
        sigma_large = samples.vth[:, 1].std()
        assert sigma_small / sigma_large == pytest.approx(2.0, rel=0.1)

    def test_systematic_component_is_spatially_correlated(self, technology, rng):
        variation = VariationModel(
            sigma_vth_inter=0.0,
            sigma_vth_random=0.0,
            sigma_vth_systematic=0.03,
            sigma_l_inter=0.0,
            sigma_l_systematic=0.0,
            correlation_length=0.4,
        )
        sampler = ParameterSampler(technology, variation)
        sizes = np.ones(3)
        x = np.array([0.05, 0.1, 0.95])
        y = np.array([0.05, 0.05, 0.95])
        samples = sampler.sample(sizes, x, y, 20000, rng)
        corr = np.corrcoef(samples.vth.T)
        assert corr[0, 1] > corr[0, 2]

    def test_vth_stays_physical(self, technology, rng, sampler_inputs):
        sizes, x, y = sampler_inputs
        variation = VariationModel(sigma_vth_inter=0.2, sigma_vth_random=0.2)
        sampler = ParameterSampler(technology, variation)
        samples = sampler.sample(sizes, x, y, 2000, rng)
        assert np.all(samples.vth < technology.vdd)
        assert np.all(samples.vth >= 0.0)
        assert np.all(samples.length > 0.0)

    def test_rejects_bad_inputs(self, technology, rng, sampler_inputs):
        sizes, x, y = sampler_inputs
        sampler = ParameterSampler(technology, VariationModel.combined())
        with pytest.raises(ValueError):
            sampler.sample(-sizes, x, y, 10, rng)
        with pytest.raises(ValueError):
            sampler.sample(sizes, x[:-1], y, 10, rng)
        with pytest.raises(ValueError):
            sampler.sample(sizes, x, y, 0, rng)
