"""Server semantics: coalescing, budgets, streaming, typed errors, drain.

Each test boots a fresh :class:`BackgroundServer` (its own session, its own
counters) on an ephemeral port and talks to it with the typed
:class:`Client` -- or raw ``http.client`` when the point is malformed
input.  The deliberately slow ``sleepy`` backend makes concurrency
deterministic: requests that must overlap, do.
"""

from __future__ import annotations

import gc
import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api.backends import get_backend, register_backend
from repro.api.canonical import spec_digest, spec_to_wire
from repro.api.session import Session
from repro.api.spec import (
    AnalysisSpec,
    DesignStudySpec,
    PipelineSpec,
    StudySpec,
)
from repro.api.sweep import ScenarioSweep, run_sweep
from repro.serve import (
    BackgroundServer,
    Client,
    ServeBudgets,
    ServeConfig,
    ServerError,
)

SMALL = StudySpec(
    pipeline=PipelineSpec(n_stages=2),
    analysis=AnalysisSpec(n_samples=200, seed=13),
)


class SleepyBackend:
    """Deterministic but slow: guarantees concurrent requests overlap."""

    name = "sleepy"

    def __init__(self, delay: float = 0.3) -> None:
        self.delay = delay
        self.calls = 0
        self._lock = threading.Lock()

    def analyze(self, session, study):
        with self._lock:
            self.calls += 1
        time.sleep(self.delay)
        return get_backend("ssta").analyze(session, study)


SLEEPY = SleepyBackend()
register_backend(SLEEPY, replace=True)

SLEEPY_SPEC = StudySpec(
    pipeline=PipelineSpec(n_stages=2),
    analysis=AnalysisSpec(backend="sleepy", n_samples=200, seed=13),
)


@pytest.fixture
def server():
    with BackgroundServer(config=ServeConfig()) as bg:
        yield bg


@pytest.fixture
def client(server):
    with Client(server.host, server.port) as c:
        yield c


def raw_request(server, method, path, body=b"", headers=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        conn.close()


class TestUnaryEndpoints:
    def test_served_study_is_byte_identical_to_local_run(self, client):
        local = Session().run(SMALL)
        served = client.study(SMALL)
        assert served == local
        assert json.dumps(served.to_dict(), sort_keys=True) == json.dumps(
            local.to_dict(), sort_keys=True
        )
        assert client.last_envelope["digest"] == spec_digest(SMALL)
        assert client.last_envelope["coalesced"] is False

    def test_served_design_matches_local_run(self, client):
        spec = DesignStudySpec(
            pipeline=PipelineSpec(n_stages=3),
            validation=AnalysisSpec(n_samples=150, seed=3),
        )

        def deterministic(report):
            # The optimizer trace records per-stage wall-clock seconds, so two
            # independent runs differ there (and only there) by construction.
            data = report.to_dict()
            for entry in data["trace"]:
                entry.pop("seconds", None)
            return data

        local = Session().run(spec)
        served = client.design(spec)
        assert deterministic(served) == deterministic(local)
        # The dispatching mirror of Session.run returns the same cached report.
        assert client.run(spec) == served

    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        stats = client.stats()
        assert stats["server"]["requests"] >= 1
        assert stats["session"]["cache_hits"] == 0
        assert stats["budgets"]["max_in_flight"] == 256


class TestCoalescing:
    def test_identical_concurrent_submissions_compute_once(self, server):
        """The acceptance gate: N duplicates -> exactly one characterisation."""
        n_clients = 8
        before = SLEEPY.calls

        def submit(_):
            with Client(server.host, server.port) as c:
                return c.study(SLEEPY_SPEC)

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            reports = list(pool.map(submit, range(n_clients)))

        assert SLEEPY.calls == before + 1
        assert all(r == reports[0] for r in reports)
        stats = server.server.stats
        assert stats.computed == 1
        assert stats.coalesced == n_clients - 1

    def test_distinct_specs_do_not_coalesce(self, server):
        specs = [
            SLEEPY_SPEC.replace(
                analysis=AnalysisSpec(backend="sleepy", n_samples=200, seed=s)
            )
            for s in (101, 102, 103)
        ]

        def submit(spec):
            with Client(server.host, server.port) as c:
                return c.study(spec)

        with ThreadPoolExecutor(max_workers=3) as pool:
            list(pool.map(submit, specs))
        assert server.server.stats.computed == 3
        assert server.server.stats.coalesced == 0


class TestBudgetsAndBackpressure:
    def test_oversized_study_is_rejected_structurally(self, server):
        with BackgroundServer(
            config=ServeConfig(budgets=ServeBudgets(max_study_samples=100))
        ) as tiny:
            with Client(tiny.host, tiny.port) as c:
                with pytest.raises(ServerError) as excinfo:
                    c.study(SMALL)  # 200 samples > 100 cap
        err = excinfo.value
        assert err.status == 413
        assert err.error_type == "BudgetExceeded"
        assert err.detail == {
            "budget": "max_study_samples", "limit": 100, "got": 200,
        }
        assert tiny.server.stats.rejected_budget == 1

    def test_oversized_sweep_is_rejected_structurally(self):
        with BackgroundServer(
            config=ServeConfig(budgets=ServeBudgets(max_sweep_points=2))
        ) as tiny:
            with Client(tiny.host, tiny.port) as c:
                sweep = ScenarioSweep(SMALL, {"analysis.seed": [1, 2, 3]})
                with pytest.raises(ServerError) as excinfo:
                    list(c.sweep(sweep))
        assert excinfo.value.status == 413
        assert excinfo.value.detail["budget"] == "max_sweep_points"

    def test_max_in_flight_rejects_with_429(self):
        with BackgroundServer(
            config=ServeConfig(budgets=ServeBudgets(max_in_flight=1))
        ) as tiny:
            statuses = []

            def submit(seed):
                with Client(tiny.host, tiny.port) as c:
                    try:
                        c.study(
                            SLEEPY_SPEC.replace(
                                analysis=AnalysisSpec(
                                    backend="sleepy", n_samples=200, seed=seed
                                )
                            )
                        )
                        statuses.append(200)
                    except ServerError as err:
                        statuses.append(err.status)
                        assert err.error_type == "TooManyRequests"
                        assert err.detail["limit"] == 1

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(submit, (201, 202, 203, 204)))
            assert 429 in statuses  # distinct specs, one compute slot
            assert statuses.count(200) >= 1
            assert tiny.server.stats.rejected_busy == statuses.count(429)

    def test_combinatorial_sweep_rejected_before_materialization(self, server):
        """A tiny body describing a 40^4 grid must bounce without building it.

        The budget check runs on the axis lengths alone; materialising
        2.56M point specs first would pin the event loop for minutes (the
        original bug: health checks blocked >120s on a 1.3KB request).
        """
        axes = {
            f"analysis.{field}": list(range(40))
            for field in ("seed", "n_samples", "alpha", "beta")
        }
        body = json.dumps({"base": spec_to_wire(SMALL), "axes": axes}).encode()
        started = time.monotonic()
        status, payload = raw_request(server, "POST", "/v1/sweep", body=body)
        elapsed = time.monotonic() - started
        assert status == 413
        assert payload["error"]["type"] == "BudgetExceeded"
        assert payload["error"]["detail"] == {
            "budget": "max_sweep_points", "limit": 1024, "got": 40**4,
        }
        assert elapsed < 5.0  # rejected from axis lengths, not after building
        # The event loop never stalled: liveness answers immediately.
        started = time.monotonic()
        status, payload = raw_request(server, "GET", "/v1/health")
        assert status == 200 and payload["status"] == "ok"
        assert time.monotonic() - started < 5.0
        assert server.server.stats.rejected_budget == 1

    def test_zip_sweep_size_counts_axis_length_not_product(self, server):
        """Zip-mode pairing: 3 values on 2 axes is 3 points, not 9."""
        axes = {"analysis.seed": [1, 2, 3], "analysis.n_samples": [100, 150, 200]}
        body = json.dumps(
            {"base": spec_to_wire(SMALL), "axes": axes, "mode": "zip"}
        ).encode()
        with BackgroundServer(
            config=ServeConfig(budgets=ServeBudgets(max_sweep_points=2))
        ) as tiny:
            status, payload = raw_request(tiny, "POST", "/v1/sweep", body=body)
        assert status == 413
        assert payload["error"]["detail"]["got"] == 3

    def test_draining_rejects_with_503(self, server, client):
        client.health()  # establish the keep-alive connection first
        server.server._draining = True
        try:
            with pytest.raises(ServerError) as excinfo:
                client.study(SMALL)
        finally:
            server.server._draining = False
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "ServerDraining"


class TestMalformedRequests:
    def test_malformed_json_is_a_typed_400(self, server):
        status, payload = raw_request(
            server, "POST", "/v1/study", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidJSON"
        assert "Traceback" not in json.dumps(payload)

    def test_invalid_spec_is_a_typed_400(self, server):
        status, payload = raw_request(
            server, "POST", "/v1/study",
            body=json.dumps({"pipeline": {"n_stages": -1}}).encode(),
        )
        assert status == 400
        assert payload["error"]["type"] == "InvalidSpec"

    def test_unknown_endpoint_is_404_and_bad_method_is_405(self, server):
        status, payload = raw_request(server, "GET", "/v1/nope")
        assert (status, payload["error"]["type"]) == (404, "NotFound")
        status, payload = raw_request(server, "DELETE", "/v1/study")
        assert (status, payload["error"]["type"]) == (405, "MethodNotAllowed")

    def test_invalid_sweep_body_is_a_typed_400(self, server):
        status, payload = raw_request(
            server, "POST", "/v1/sweep", body=json.dumps({"axes": {}}).encode()
        )
        assert (status, payload["error"]["type"]) == (400, "InvalidSweep")


class TestSweepStreaming:
    def test_stream_matches_local_run_sweep(self, server, client):
        axes = {"analysis.n_samples": [100, 150, 200]}
        local = run_sweep(SMALL, axes, session=Session())
        events = list(client.sweep(ScenarioSweep(SMALL, axes)))
        kinds = [e.kind for e in events]
        assert kinds[0] == "start" and kinds[-1] == "done"
        assert kinds.count("point") == 3
        served = client.sweep_result(ScenarioSweep(SMALL, axes))
        assert list(served) == list(local)
        # Byte-identical points (the trace legitimately differs in wall-clock).
        assert json.dumps([p.to_dict() for p in served]) == json.dumps(
            [p.to_dict() for p in local]
        )
        assert server.server.stats.points_streamed >= 6

    def test_stream_carries_structured_failures(self, client):
        axes = {"analysis.backend": ["montecarlo", "no-such-backend"]}
        result = client.sweep_result(ScenarioSweep(SMALL, axes))
        assert len(result.points) == 1
        assert len(result.failures) == 1
        assert result.failures[0].error_type == "KeyError"
        assert result.trace.n_failed == 1

    def test_stream_start_event_reports_size(self, client):
        events = list(
            client.sweep(ScenarioSweep(SMALL, {"analysis.seed": [1, 2]}))
        )
        assert events[0].data["n_points"] == 2

    def test_midstream_failure_ends_stream_with_error_event(self, server, client):
        """A failure after the head is out must not inject a second response.

        The server finishes the chunked body with a structured ``error``
        event and the terminator; the client surfaces it as a typed
        ServerError, and the server keeps serving fresh connections.
        """
        calls = {"n": 0}
        original = server.server._run_batch

        def flaky(tasks, n_jobs, policy):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("backend exploded mid-stream")
            return original(tasks, n_jobs, policy)

        server.server._run_batch = flaky
        sweep = ScenarioSweep(SMALL, {"analysis.seed": [1, 2, 3]})
        events = []
        with pytest.raises(ServerError) as excinfo:
            for event in client.sweep(sweep, chunk=1):
                events.append(event)
        assert excinfo.value.error_type == "ComputeError"
        assert "RuntimeError" in str(excinfo.value)
        kinds = [e.kind for e in events]
        assert "start" in kinds and kinds.count("point") == 1
        assert "done" not in kinds
        assert server.server.stats.errors == 1
        # The chunked framing stayed intact and the connection closed; a
        # fresh connection gets a clean, normal exchange.
        with Client(server.host, server.port) as follow_up:
            assert follow_up.health()["status"] == "ok"


class TestShardedSweep:
    """The sweep endpoint's ``shards`` knob: shard-run server side, same bytes."""

    def test_sharded_stream_is_byte_identical_to_local_serial(
        self, server, client
    ):
        axes = {"analysis.n_samples": [100, 150, 200], "analysis.seed": [1, 2]}
        local = run_sweep(SMALL, axes, session=Session())
        served = client.sweep_result(ScenarioSweep(SMALL, axes), shards=2)
        assert json.dumps([p.to_dict() for p in served]) == json.dumps(
            [p.to_dict() for p in local]
        )
        assert served.trace.n_shards == 2
        assert served.trace.pool_kind in ("shard", "serial")

    def test_shards_beyond_budget_rejected_with_structured_413(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sweep_result(
                ScenarioSweep(SMALL, {"analysis.seed": [1, 2]}), shards=99
            )
        assert excinfo.value.status == 413
        assert excinfo.value.error_type == "BudgetExceeded"
        assert excinfo.value.detail["budget"] == "max_shards"
        assert excinfo.value.detail == {"budget": "max_shards", "limit": 8, "got": 99}

    def test_shards_and_n_jobs_rejected_as_invalid(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sweep_result(
                ScenarioSweep(SMALL, {"analysis.seed": [1, 2]}),
                shards=2,
                n_jobs=2,
            )
        assert excinfo.value.status == 400
        assert "mutually exclusive" in str(excinfo.value)

    def test_server_default_shards_applies_when_request_is_silent(self):
        axes = {"analysis.seed": [1, 2, 3]}
        local = run_sweep(SMALL, axes, session=Session())
        with BackgroundServer(
            config=ServeConfig(sweep_shards=2)
        ) as background:
            with Client(background.host, background.port) as c:
                served = c.sweep_result(ScenarioSweep(SMALL, axes))
        assert served.trace.n_shards == 2
        assert list(served) == list(local)

    def test_stats_reports_max_shards_budget(self, client):
        assert client.stats()["budgets"]["max_shards"] == 8


class TestClientRetry:
    """The client may only retry when a resubmit cannot double work."""

    @staticmethod
    def _acceptor(handle):
        """A fake server: ``handle(conn)`` per accepted connection."""
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        sock.settimeout(0.05)
        stop = threading.Event()
        accepted = []

        def run():
            while not stop.is_set():
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    continue
                accepted.append(conn)
                handle(conn)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        port = sock.getsockname()[1]

        def shutdown():
            stop.set()
            thread.join(timeout=5)
            sock.close()
            for conn in accepted:
                conn.close()

        return port, accepted, shutdown

    def test_post_is_not_retried_when_fresh_connection_dies(self):
        """A POST dying mid-exchange on a fresh socket must surface, not
        silently resubmit (the server may already be computing it)."""

        def slam(conn):
            conn.recv(65536)
            conn.close()

        port, accepted, shutdown = self._acceptor(slam)
        try:
            with Client("127.0.0.1", port, timeout=5) as client:
                with pytest.raises((http.client.HTTPException, OSError)):
                    client.study(SMALL)
            time.sleep(0.2)  # would-be retry has time to reconnect
            assert len(accepted) == 1  # the spec was submitted exactly once
        finally:
            shutdown()

    def test_stale_keepalive_get_is_retried_transparently(self):
        """A keep-alive socket the server closed after a completed exchange
        is the one safe retry case: reconnect and repeat."""
        response = (
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: 16\r\nConnection: keep-alive\r\n\r\n"
            b'{"protocol": 1}\n'
        )

        def answer_once_then_hang_up(conn):
            conn.recv(65536)
            conn.sendall(response)
            conn.close()  # lies about keep-alive: next reuse hits a dead socket

        port, accepted, shutdown = self._acceptor(answer_once_then_hang_up)
        try:
            with Client("127.0.0.1", port, timeout=5) as client:
                assert client.stats()["protocol"] == 1
                # The reused connection is stale; the GET retries on a fresh
                # socket and succeeds without surfacing an error.
                assert client.stats()["protocol"] == 1
            assert len(accepted) >= 2
        finally:
            shutdown()


class TestGracefulDrain:
    def test_shutdown_with_idle_keepalive_connection_is_quiet(self):
        """Cancelling idle connection handlers at shutdown must not leave
        unretrieved CancelledErrors (logged as spurious tracebacks)."""
        bg = BackgroundServer(config=ServeConfig()).start()
        captured = []
        loop = bg._loop
        loop.call_soon_threadsafe(
            loop.set_exception_handler,
            lambda _loop, context: captured.append(context),
        )
        client = Client(bg.host, bg.port)
        try:
            assert client.health()["status"] == "ok"
            # The keep-alive connection stays open and idle through shutdown.
            bg.stop(drain=True, timeout=30)
            gc.collect()  # unretrieved task exceptions surface at GC time
            assert captured == []
        finally:
            client.close()

    def test_shutdown_drains_in_flight_compute(self):
        bg = BackgroundServer(config=ServeConfig()).start()
        results = {}

        def submit():
            with Client(bg.host, bg.port, timeout=30) as c:
                results["report"] = c.study(SLEEPY_SPEC)

        thread = threading.Thread(target=submit)
        thread.start()
        # Wait until the computation is actually admitted, then drain.
        deadline = time.monotonic() + 5.0
        while bg.server.in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert bg.server.in_flight == 1
        bg.stop(drain=True, timeout=30)
        thread.join(timeout=30)
        assert results["report"] == Session().run(SLEEPY_SPEC)
        assert bg.server.stats.computed == 1
        assert bg.server.in_flight == 0
