"""Shard-parallel sweeps: digest partition, exact merge, kill/resume, CLI.

The shard runner's whole contract is *bit-identity*: however a sweep is
split -- 1, 2 or 3 shards, in-process pool or independently-launched CLI
processes, killed and resumed -- the merged result must equal an
uninterrupted serial run, point for point, byte for byte.  Every test here
compares against the serial reference rather than asserting shapes.  The
kill/resume test spawns (and SIGKILLs) real interpreter processes and
carries the strict ``slow`` marker.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api.canonical import resolved_store_spec, spec_digest, spec_to_wire
from repro.api.session import Session
from repro.api.spec import AnalysisSpec, PipelineSpec, StudySpec, VariationSpec
from repro.api.sweep import ScenarioSweep, SweepResult, run_sweep
from repro.robust import ExecutionPolicy, FaultPlan, FaultSpec
from repro.robust.shard import (
    merge_shard_results,
    partition_tasks,
    run_sharded,
    shard_for_digest,
)

AXES = {"pipeline.n_stages": [2, 3], "variation.sigma_scale": [0.5, 1.0]}
FAST_RETRY = ExecutionPolicy(max_retries=2, backoff_base=0.0)


@pytest.fixture(scope="module")
def base_spec() -> StudySpec:
    return StudySpec(
        pipeline=PipelineSpec(n_stages=2, logic_depth=3),
        variation=VariationSpec.combined(),
        analysis=AnalysisSpec(backend="montecarlo", n_samples=200, seed=11),
    )


@pytest.fixture(scope="module")
def reference(base_spec):
    """Uninterrupted serial run under the legacy (no-policy) contract."""
    return ScenarioSweep(base_spec, AXES).run(session=Session())


def point_identity(result):
    """Everything about a result's points except wall-clock trace fields."""
    return [(p.index, p.coords, p.spec, p.report) for p in result]


class TestPartition:
    def test_shard_for_digest_is_pure_modulo(self):
        digest = "ab" * 32
        assert shard_for_digest(digest, 1) == 0
        assert shard_for_digest(digest, 7) == int(digest, 16) % 7

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError, match="at least 1"):
            shard_for_digest("ab" * 32, 0)

    def test_partition_is_deterministic_and_covers_every_task(self, base_spec):
        session = Session()
        tasks = ScenarioSweep(base_spec, AXES).tasks(session)
        first = partition_tasks(tasks, session, 3)
        second = partition_tasks(tasks, session, 3)
        assert [[t.index for t in s] for s in first] == [
            [t.index for t in s] for s in second
        ]
        flat = sorted(t.index for shard in first for t in shard)
        assert flat == [t.index for t in tasks]

    def test_partition_agrees_with_digest(self, base_spec):
        session = Session()
        tasks = ScenarioSweep(base_spec, AXES).tasks(session)
        partition = partition_tasks(tasks, session, 4)
        for shard_id, shard_tasks in enumerate(partition):
            for task in shard_tasks:
                digest = spec_digest(resolved_store_spec(task.spec, session))
                assert shard_for_digest(digest, 4) == shard_id

    def test_duplicate_points_land_on_one_shard(self, base_spec):
        # A zip sweep over a constant axis yields identical specs modulo
        # seed; with a fixed seed policy the specs (and digests) coincide.
        session = Session()
        sweep = ScenarioSweep(
            base_spec,
            {"variation.sigma_scale": [0.5, 0.5, 0.5]},
            mode="zip",
            seed_policy="fixed",
        )
        tasks = sweep.tasks(session)
        digests = {
            spec_digest(resolved_store_spec(t.spec, session)) for t in tasks
        }
        assert len(digests) == 1  # genuinely duplicate work
        for n_shards in (2, 3, 5):
            partition = partition_tasks(tasks, session, n_shards)
            occupied = [shard for shard in partition if shard]
            assert len(occupied) == 1


class TestShardedRun:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_result_is_bit_identical_to_serial(
        self, base_spec, reference, shards
    ):
        result = ScenarioSweep(base_spec, AXES).run(
            session=Session(), shards=shards
        )
        assert point_identity(result) == point_identity(reference)
        assert not result.failures
        assert result.trace.n_shards == shards
        assert result.trace.pool_kind in ("shard", "serial")

    def test_run_sweep_facade_accepts_shards(self, base_spec, reference):
        result = run_sweep(base_spec, AXES, session=Session(), shards=2)
        assert point_identity(result) == point_identity(reference)

    def test_shards_and_n_jobs_are_mutually_exclusive(self, base_spec):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ScenarioSweep(base_spec, AXES).run(shards=2, n_jobs=2)

    def test_failures_merge_bit_identical_to_serial(self, base_spec):
        # The same injected fault produces the same structured failure
        # whether the point runs serially or inside a shard process.
        plan = FaultPlan((FaultSpec(point=1, kind="raise", attempts=-1),))
        serial = ScenarioSweep(base_spec, AXES).run(
            session=Session(), policy=ExecutionPolicy(), fault_plan=plan
        )
        sharded = ScenarioSweep(base_spec, AXES).run(
            session=Session(), policy=ExecutionPolicy(), fault_plan=plan, shards=2
        )
        assert point_identity(sharded) == point_identity(serial)

        def failure_identity(result):
            # everything except the wall-clock elapsed field
            records = [f.to_dict() for f in result.failures]
            for record in records:
                record.pop("elapsed")
            return records

        assert failure_identity(sharded) == failure_identity(serial)
        assert sharded.trace.n_failed == serial.trace.n_failed == 1

    def test_duplicates_coalesce_within_their_shard(self, base_spec, tmp_path):
        session = Session()
        sweep = ScenarioSweep(
            base_spec,
            {"variation.sigma_scale": [0.5, 0.5, 0.5]},
            mode="zip",
            seed_policy="fixed",
        )
        result = sweep.run(
            session=session,
            policy=ExecutionPolicy(checkpoint_dir=str(tmp_path)),
            shards=2,
        )
        assert len(result) == 3
        reports = [p.report for p in result]
        assert reports[0] == reports[1] == reports[2]
        # one computed + two checkpoint hits, never three computations
        assert result.trace.checkpoint_writes == 1
        assert result.trace.checkpoint_hits == 2

    def test_ephemeral_store_is_cleaned_up(self, base_spec, tmp_path, monkeypatch):
        import tempfile as tempfile_module

        monkeypatch.setattr(tempfile_module, "tempdir", str(tmp_path))
        result = ScenarioSweep(base_spec, AXES).run(session=Session(), shards=2)
        assert len(result) == 4
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith("repro-shard-")]
        assert leftovers == []

    def test_resume_from_shared_store_recomputes_nothing(
        self, base_spec, reference, tmp_path
    ):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        first = ScenarioSweep(base_spec, AXES).run(
            session=Session(), policy=policy, shards=2
        )
        assert first.trace.checkpoint_writes == 4
        second = ScenarioSweep(base_spec, AXES).run(
            session=Session(), policy=policy, shards=2
        )
        assert point_identity(second) == point_identity(reference)
        assert second.trace.checkpoint_hits == 4
        assert second.trace.checkpoint_writes == 0

    def test_merge_shard_results_reassembles_index_order(self):
        from repro.robust.failures import ExecutionTrace, PointFailure

        class FakePoint:
            def __init__(self, index):
                self.index = index

        part_a = ([FakePoint(3), FakePoint(0)], [], ExecutionTrace(n_completed=2))
        failure = PointFailure(
            index=1, coords=(), error_type="RuntimeError", message="boom"
        )
        part_b = ([FakePoint(2)], [failure], ExecutionTrace(n_completed=1, n_failed=1))
        points, failures, trace = merge_shard_results(
            [part_a, part_b], n_points=4, n_shards=2
        )
        assert [p.index for p in points] == [0, 2, 3]
        assert [f.index for f in failures] == [1]
        assert trace.pool_kind == "shard"
        assert trace.n_shards == 2
        assert trace.n_points == 4
        assert (trace.n_completed, trace.n_failed) == (3, 1)


# ----------------------------------------------------------------------
# Standalone CLI: independently-launched shard processes
# ----------------------------------------------------------------------
def cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def shard_cmd(*args):
    return [sys.executable, "-m", "repro.robust.shard", *args]


def write_request(path, base_spec, axes, policy=None):
    payload = {"base": spec_to_wire(base_spec), "axes": axes}
    if policy is not None:
        payload["policy"] = policy.to_dict()
    path.write_text(json.dumps(payload))
    return path


class TestShardCLI:
    def test_plan_prints_the_partition(self, base_spec, tmp_path):
        req = write_request(tmp_path / "sweep.json", base_spec, AXES)
        out = subprocess.run(
            shard_cmd("plan", str(req), "--shards", "2"),
            capture_output=True,
            text=True,
            env=cli_env(),
            check=True,
        )
        plan = json.loads(out.stdout)
        assert plan["n_points"] == 4
        assert plan["n_shards"] == 2
        covered = sorted(
            i for shard in plan["shards"] for i in shard["indices"]
        )
        assert covered == [0, 1, 2, 3]

    def test_run_and_merge_round_trip_equals_serial(
        self, base_spec, reference, tmp_path
    ):
        req = write_request(tmp_path / "sweep.json", base_spec, AXES)
        store = tmp_path / "store"
        for shard in ("0", "1"):
            subprocess.run(
                shard_cmd(
                    "run", str(req), "--store", str(store),
                    "--shards", "2", "--shard", shard,
                ),
                capture_output=True,
                env=cli_env(),
                check=True,
            )
        merged_path = tmp_path / "merged.json"
        subprocess.run(
            shard_cmd(
                "merge", str(req), "--store", str(store),
                "--shards", "2", "--out", str(merged_path),
            ),
            capture_output=True,
            env=cli_env(),
            check=True,
        )
        merged = SweepResult.from_json(merged_path.read_text())
        assert [
            (p.index, p.coords, p.spec, p.report.to_dict()) for p in merged
        ] == [
            (p.index, p.coords, p.spec, p.report.to_dict()) for p in reference
        ]
        assert merged.trace.pool_kind == "shard"
        assert merged.trace.n_shards == 2

    def test_merge_refuses_incomplete_shard_set(self, base_spec, tmp_path):
        req = write_request(tmp_path / "sweep.json", base_spec, AXES)
        store = tmp_path / "store"
        subprocess.run(
            shard_cmd(
                "run", str(req), "--store", str(store),
                "--shards", "2", "--shard", "0",
            ),
            capture_output=True,
            env=cli_env(),
            check=True,
        )
        out = subprocess.run(
            shard_cmd("merge", str(req), "--store", str(store), "--shards", "2"),
            capture_output=True,
            text=True,
            env=cli_env(),
        )
        assert out.returncode == 2
        assert "missing shard output" in out.stderr

    def test_run_rejects_out_of_range_shard_id(self, base_spec, tmp_path):
        req = write_request(tmp_path / "sweep.json", base_spec, AXES)
        out = subprocess.run(
            shard_cmd(
                "run", str(req), "--store", str(tmp_path / "store"),
                "--shards", "2", "--shard", "2",
            ),
            capture_output=True,
            text=True,
            env=cli_env(),
        )
        assert out.returncode != 0
        assert "--shard must be in [0, 2)" in out.stderr


@pytest.mark.slow
class TestKillResume:
    """SIGKILL a shard mid-sweep; the relaunch must recompute nothing stored.

    This is the exact-resume acceptance test: the only state a killed shard
    leaves behind is the checkpoint store, and that must be enough for the
    relaunched process to skip every already-persisted point (store hit
    accounting proves it) and for the final merge to remain bit-identical
    to a never-interrupted serial run.
    """

    def test_sigkill_resume_is_exact(self, tmp_path):
        heavy = StudySpec(
            pipeline=PipelineSpec(n_stages=3, logic_depth=6),
            variation=VariationSpec.combined(),
            analysis=AnalysisSpec(
                backend="montecarlo", n_samples=40_000, seed=7
            ),
        )
        axes = {
            "pipeline.n_stages": [2, 3, 4, 5],
            "variation.sigma_scale": [0.5, 0.75, 1.0, 1.25],
        }
        req = write_request(tmp_path / "sweep.json", heavy, axes)
        store = tmp_path / "store"
        n_shards = 2

        session = Session()
        tasks = ScenarioSweep(heavy, axes).tasks(session)
        shard0 = partition_tasks(tasks, session, n_shards)[0]
        assert len(shard0) >= 4, "partition too lopsided for a mid-sweep kill"

        def stored_count():
            return (
                sum(1 for _ in store.rglob("*.json")) if store.exists() else 0
            )

        victim = subprocess.Popen(
            shard_cmd(
                "run", str(req), "--store", str(store),
                "--shards", str(n_shards), "--shard", "0",
            ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=cli_env(),
        )
        try:
            # Kill once at least one point is persisted but (normally) well
            # before the shard finishes.
            deadline = time.monotonic() + 120.0
            while stored_count() < 1 and victim.poll() is None:
                if time.monotonic() > deadline:
                    pytest.fail("shard never wrote a checkpoint")
                time.sleep(0.005)
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
        survived = stored_count()
        assert survived >= 1
        shard0_out = store / "shards" / f"shard-0-of-{n_shards}.json"
        assert not shard0_out.exists()  # killed before writing its result

        # Relaunch the dead shard: it must resume, not recompute.
        subprocess.run(
            shard_cmd(
                "run", str(req), "--store", str(store),
                "--shards", str(n_shards), "--shard", "0",
            ),
            capture_output=True,
            env=cli_env(),
            check=True,
        )
        resumed = SweepResult.from_json(shard0_out.read_text())
        assert resumed.trace.checkpoint_hits >= survived
        assert resumed.trace.checkpoint_hits + resumed.trace.checkpoint_writes == len(
            shard0
        )

        subprocess.run(
            shard_cmd(
                "run", str(req), "--store", str(store),
                "--shards", str(n_shards), "--shard", "1",
            ),
            capture_output=True,
            env=cli_env(),
            check=True,
        )
        merged_path = tmp_path / "merged.json"
        subprocess.run(
            shard_cmd(
                "merge", str(req), "--store", str(store),
                "--shards", str(n_shards), "--out", str(merged_path),
            ),
            capture_output=True,
            env=cli_env(),
            check=True,
        )
        merged = SweepResult.from_json(merged_path.read_text())
        serial = ScenarioSweep(heavy, axes).run(session=Session())
        assert [
            (p.index, p.coords, p.spec, p.report.to_dict()) for p in merged
        ] == [
            (p.index, p.coords, p.spec, p.report.to_dict()) for p in serial
        ]
        assert not merged.failures
