"""Tests for the statistical gate sizers (Lagrangian and greedy)."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import inverter_chain, random_logic_block
from repro.optimize.greedy import GreedySizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.stage import PipelineStage


@pytest.fixture
def stage():
    block = random_logic_block(
        "blk", n_gates=50, depth=9, n_inputs=7, n_outputs=4, seed=13
    )
    return PipelineStage("blk", block, flipflop=FlipFlopTiming())


@pytest.fixture
def greedy_sizer(technology, variation_combined):
    return GreedySizer(technology, variation_combined, max_moves=1500)


class TestLagrangianSizer:
    def test_meets_moderate_target(self, lagrangian_sizer, stage):
        base = lagrangian_sizer.stage_distribution(stage)
        target = 0.85 * base.delay_at_yield(0.93)
        result = lagrangian_sizer.size_stage(stage, target, 0.93, apply=False)
        assert result.met_target
        assert result.achieved_yield >= 0.93 - 1e-6
        assert result.stage_delay.delay_at_yield(0.93) <= target * 1.001

    def test_tighter_target_needs_more_area(self, lagrangian_sizer, stage):
        base = lagrangian_sizer.stage_distribution(stage)
        reference = base.delay_at_yield(0.93)
        relaxed = lagrangian_sizer.size_stage(stage, 0.95 * reference, 0.93, apply=False)
        tight = lagrangian_sizer.size_stage(stage, 0.75 * reference, 0.93, apply=False)
        assert tight.area > relaxed.area

    def test_loose_target_stays_near_minimum_area(self, lagrangian_sizer, stage):
        min_area = stage.netlist.total_area(np.ones(stage.n_gates))
        base = lagrangian_sizer.stage_distribution(stage)
        result = lagrangian_sizer.size_stage(
            stage, 1.3 * base.delay_at_yield(0.93), 0.93, apply=False
        )
        assert result.met_target
        assert result.area <= 1.15 * min_area

    def test_apply_writes_sizes(self, lagrangian_sizer, stage):
        base = lagrangian_sizer.stage_distribution(stage)
        target = 0.85 * base.delay_at_yield(0.93)
        result = lagrangian_sizer.size_stage(stage, target, 0.93, apply=True)
        assert np.allclose(stage.netlist.sizes(), result.sizes)

    def test_apply_false_leaves_netlist_unchanged(self, lagrangian_sizer, stage):
        before = stage.netlist.sizes()
        base = lagrangian_sizer.stage_distribution(stage)
        lagrangian_sizer.size_stage(stage, 0.85 * base.delay_at_yield(0.93), 0.93, apply=False)
        assert np.allclose(stage.netlist.sizes(), before)

    def test_sizes_respect_bounds(self, technology, variation_combined, stage):
        sizer = LagrangianSizer(technology, variation_combined, min_size=1.0, max_size=4.0)
        base = sizer.stage_distribution(stage)
        result = sizer.size_stage(stage, 0.7 * base.delay_at_yield(0.9), 0.9, apply=False)
        assert np.all(result.sizes >= 1.0 - 1e-12)
        assert np.all(result.sizes <= 4.0 + 1e-12)

    def test_impossible_target_reports_not_met(self, lagrangian_sizer, stage):
        result = lagrangian_sizer.size_stage(stage, 5e-12, 0.93, apply=False)
        assert not result.met_target
        assert result.achieved_yield < 0.93

    def test_higher_yield_requirement_needs_more_area(self, lagrangian_sizer, stage):
        base = lagrangian_sizer.stage_distribution(stage)
        target = 0.9 * base.delay_at_yield(0.93)
        modest = lagrangian_sizer.size_stage(stage, target, 0.80, apply=False)
        strict = lagrangian_sizer.size_stage(stage, target, 0.99, apply=False)
        assert strict.area >= modest.area

    def test_validation(self, lagrangian_sizer, stage, technology, variation_combined):
        with pytest.raises(ValueError):
            lagrangian_sizer.size_stage(stage, -1.0, 0.9)
        with pytest.raises(ValueError):
            lagrangian_sizer.size_stage(stage, 1e-9, 1.5)
        with pytest.raises(ValueError):
            LagrangianSizer(technology, variation_combined, min_size=2.0, max_size=1.0)

    def test_minimum_area_delay(self, lagrangian_sizer, stage):
        delay, area = lagrangian_sizer.minimum_area_delay(stage, 0.93)
        assert delay > 0.0
        assert area == pytest.approx(stage.netlist.total_area(np.ones(stage.n_gates)))

    def test_inverter_chain_geometric_like_sizing(self, lagrangian_sizer):
        """Sizing a loaded chain should taper sizes towards the load."""
        chain = inverter_chain(5)
        chain.default_output_load = 40e-15
        stage = PipelineStage("chain", chain)
        base = lagrangian_sizer.stage_distribution(stage)
        result = lagrangian_sizer.size_stage(stage, 0.75 * base.delay_at_yield(0.9), 0.9, apply=False)
        assert result.met_target
        # The driver closest to the big load ends up biggest.
        assert int(np.argmax(result.sizes)) == len(result.sizes) - 1


class TestGreedySizer:
    def test_meets_moderate_target(self, greedy_sizer, stage):
        base_delay, _ = greedy_sizer.minimum_area_delay(stage, 0.93) if hasattr(
            greedy_sizer, "minimum_area_delay"
        ) else (None, None)
        form = greedy_sizer.ssta.stage_delay(
            stage.netlist, stage.flipflop, stage.register_position,
            sizes=np.ones(stage.n_gates),
        )
        from repro.core.stage_delay import StageDelayDistribution

        base = StageDelayDistribution.from_canonical(form)
        target = 0.85 * base.delay_at_yield(0.93)
        result = greedy_sizer.size_stage(stage, target, 0.93, apply=False)
        assert result.met_target
        assert result.area > stage.netlist.total_area(np.ones(stage.n_gates))

    def test_moves_bounded(self, technology, variation_combined, stage):
        sizer = GreedySizer(technology, variation_combined, max_moves=5)
        result = sizer.size_stage(stage, 1e-12, 0.9, apply=False)
        assert result.iterations <= 5
        assert not result.met_target

    def test_validation(self, greedy_sizer, stage, technology, variation_combined):
        with pytest.raises(ValueError):
            greedy_sizer.size_stage(stage, 0.0, 0.9)
        with pytest.raises(ValueError):
            GreedySizer(technology, variation_combined, size_step=1.0)

    def test_greedy_and_lagrangian_agree_on_feasibility(
        self, greedy_sizer, lagrangian_sizer, stage
    ):
        base = lagrangian_sizer.stage_distribution(stage)
        target = 0.85 * base.delay_at_yield(0.93)
        greedy = greedy_sizer.size_stage(stage, target, 0.93, apply=False)
        lagrangian = lagrangian_sizer.size_stage(stage, target, 0.93, apply=False)
        assert greedy.met_target and lagrangian.met_target
