"""Tests for repro.process.spatial."""

import numpy as np
import pytest

from repro.process.spatial import SpatialCorrelationModel


class TestConstruction:
    def test_n_cells(self):
        model = SpatialCorrelationModel(grid_size=4)
        assert model.n_cells == 16

    def test_rejects_bad_grid(self):
        with pytest.raises(ValueError):
            SpatialCorrelationModel(grid_size=0)

    def test_rejects_bad_correlation_length(self):
        with pytest.raises(ValueError):
            SpatialCorrelationModel(correlation_length=0.0)


class TestCorrelationMatrix:
    def test_unit_diagonal(self):
        model = SpatialCorrelationModel(grid_size=5, correlation_length=0.3)
        corr = model.correlation_matrix()
        assert np.allclose(np.diag(corr), 1.0)

    def test_symmetric_and_bounded(self):
        model = SpatialCorrelationModel(grid_size=5, correlation_length=0.3)
        corr = model.correlation_matrix()
        assert np.allclose(corr, corr.T)
        assert np.all(corr > 0.0) and np.all(corr <= 1.0 + 1e-12)

    def test_correlation_decays_with_distance(self):
        model = SpatialCorrelationModel(grid_size=8, correlation_length=0.3)
        near = model.correlation_between((0.1, 0.1), (0.2, 0.1))
        far = model.correlation_between((0.1, 0.1), (0.9, 0.9))
        assert near > far

    def test_same_cell_is_perfectly_correlated(self):
        model = SpatialCorrelationModel(grid_size=4)
        assert model.correlation_between((0.1, 0.1), (0.12, 0.13)) == pytest.approx(1.0)


class TestSampling:
    def test_sample_shapes(self, rng):
        model = SpatialCorrelationModel(grid_size=4)
        cells = model.sample_cells(100, rng)
        assert cells.shape == (100, 16)
        x = np.linspace(0, 1, 10)
        field = model.sample_at(x, x, 50, rng)
        assert field.shape == (50, 10)

    def test_marginals_are_standard_normal(self, rng):
        model = SpatialCorrelationModel(grid_size=4, correlation_length=0.4)
        cells = model.sample_cells(20000, rng)
        assert abs(cells.mean()) < 0.03
        assert abs(cells.std() - 1.0) < 0.03

    def test_empirical_correlation_matches_model(self, rng):
        model = SpatialCorrelationModel(grid_size=4, correlation_length=0.5)
        points_x = np.array([0.1, 0.9])
        points_y = np.array([0.1, 0.9])
        field = model.sample_at(points_x, points_y, 40000, rng)
        empirical = np.corrcoef(field.T)[0, 1]
        expected = model.correlation_between((0.1, 0.1), (0.9, 0.9))
        assert empirical == pytest.approx(expected, abs=0.03)

    def test_nearby_points_more_correlated_than_distant(self, rng):
        model = SpatialCorrelationModel(grid_size=8, correlation_length=0.3)
        x = np.array([0.05, 0.15, 0.95])
        y = np.array([0.05, 0.05, 0.95])
        field = model.sample_at(x, y, 20000, rng)
        corr = np.corrcoef(field.T)
        assert corr[0, 1] > corr[0, 2]

    def test_rejects_mismatched_coordinates(self, rng):
        model = SpatialCorrelationModel(grid_size=4)
        with pytest.raises(ValueError):
            model.sample_at(np.zeros(3), np.zeros(4), 10, rng)

    def test_rejects_zero_samples(self, rng):
        model = SpatialCorrelationModel(grid_size=4)
        with pytest.raises(ValueError):
            model.sample_cells(0, rng)

    def test_coordinates_outside_die_are_clipped(self, rng):
        model = SpatialCorrelationModel(grid_size=4)
        index = model.cell_index(1.5, -0.2)
        assert 0 <= int(index) < model.n_cells
