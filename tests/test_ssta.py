"""Tests for repro.timing.ssta (canonical-form statistical timing)."""

import numpy as np
import pytest

from repro.circuit.flipflop import FlipFlopTiming
from repro.circuit.generators import inverter_chain, random_logic_block
from repro.montecarlo.engine import MonteCarloEngine
from repro.pipeline.stage import PipelineStage
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.ssta import CanonicalForm, StatisticalTimingAnalyzer


class TestCanonicalForm:
    def test_variance_combines_global_and_private(self):
        form = CanonicalForm(1.0, np.array([3.0, 4.0]), 0.0)
        assert form.sigma == pytest.approx(5.0)
        form2 = CanonicalForm(1.0, np.zeros(2), 2.0)
        assert form2.variance == pytest.approx(4.0)

    def test_addition(self):
        a = CanonicalForm(1.0, np.array([1.0, 0.0]), 3.0)
        b = CanonicalForm(2.0, np.array([0.0, 2.0]), 4.0)
        total = a + b
        assert total.mean == pytest.approx(3.0)
        assert np.allclose(total.sensitivities, [1.0, 2.0])
        assert total.sigma_random == pytest.approx(5.0)

    def test_correlation_through_shared_factors(self):
        a = CanonicalForm(0.0, np.array([1.0, 0.0]), 0.0)
        b = CanonicalForm(0.0, np.array([1.0, 0.0]), 0.0)
        c = CanonicalForm(0.0, np.array([0.0, 1.0]), 0.0)
        assert a.correlation(b) == pytest.approx(1.0)
        assert a.correlation(c) == pytest.approx(0.0)

    def test_correlation_of_constant_is_zero(self):
        a = CanonicalForm.constant(5.0, 3)
        b = CanonicalForm(0.0, np.array([1.0, 0.0, 0.0]), 0.0)
        assert a.correlation(b) == 0.0

    def test_incompatible_bases_rejected(self):
        a = CanonicalForm(0.0, np.zeros(2), 0.0)
        b = CanonicalForm(0.0, np.zeros(3), 0.0)
        with pytest.raises(ValueError):
            a.covariance(b)

    def test_maximum_of_identical_forms_is_identity(self):
        # Identical in the global factors (private parts are, by definition of
        # the canonical form, independent between two distinct quantities, so
        # the exact identity only holds when the private part is zero).
        a = CanonicalForm(2.0, np.array([1.0, 2.0]), 0.0)
        result = CanonicalForm.maximum(a, a)
        assert result.mean == pytest.approx(a.mean)
        assert result.sigma == pytest.approx(a.sigma)

    def test_maximum_of_dominated_form(self):
        small = CanonicalForm(1.0, np.array([0.001]), 0.0)
        large = CanonicalForm(100.0, np.array([0.001]), 0.0)
        result = CanonicalForm.maximum(small, large)
        assert result.mean == pytest.approx(100.0, rel=1e-6)

    def test_maximum_of_independent_standard_normals(self):
        a = CanonicalForm(0.0, np.array([1.0, 0.0]), 0.0)
        b = CanonicalForm(0.0, np.array([0.0, 1.0]), 0.0)
        result = CanonicalForm.maximum(a, b)
        # E[max of two iid N(0,1)] = 1/sqrt(pi)
        assert result.mean == pytest.approx(1.0 / np.sqrt(np.pi), rel=1e-6)

    def test_shifted(self):
        a = CanonicalForm(1.0, np.array([1.0]), 0.5)
        assert a.shifted(2.0).mean == pytest.approx(3.0)
        assert a.shifted(2.0).sigma == pytest.approx(a.sigma)


class TestAnalyzerChain:
    def test_chain_mean_matches_sum_of_nominal_delays(self, technology):
        chain = inverter_chain(8)
        variation = VariationModel.intra_random_only(0.03)
        analyzer = StatisticalTimingAnalyzer(technology, variation)
        form = analyzer.combinational_delay(chain)
        nominal = GateDelayModel(technology).nominal_delays(chain).sum()
        assert form.mean == pytest.approx(nominal, rel=1e-9)

    def test_chain_sigma_under_independent_variation(self, technology):
        chain = inverter_chain(16)
        variation = VariationModel.intra_random_only(0.03)
        analyzer = StatisticalTimingAnalyzer(technology, variation)
        coeffs = GateDelayModel(technology).sensitivity_coefficients(chain, variation)
        expected_sigma = np.sqrt((coeffs["sigma_random"] ** 2).sum())
        form = analyzer.combinational_delay(chain)
        assert form.sigma == pytest.approx(expected_sigma, rel=1e-9)

    def test_chain_sigma_under_inter_only_variation(self, technology):
        chain = inverter_chain(16)
        variation = VariationModel.inter_only(0.03)
        analyzer = StatisticalTimingAnalyzer(technology, variation)
        coeffs = GateDelayModel(technology).sensitivity_coefficients(chain, variation)
        # Perfectly correlated contributions add linearly per factor and the
        # two factors (Vth, L) add in quadrature.
        expected = np.hypot(
            coeffs["sigma_vth_inter"].sum(), coeffs["sigma_l_inter"].sum()
        )
        form = analyzer.combinational_delay(chain)
        assert form.sigma == pytest.approx(expected, rel=1e-9)

    def test_n_factors_without_systematic(self, technology):
        analyzer = StatisticalTimingAnalyzer(
            technology, VariationModel.intra_random_only()
        )
        assert analyzer.n_factors == 2

    def test_variance_coverage_validation(self, technology, variation_combined):
        with pytest.raises(ValueError):
            StatisticalTimingAnalyzer(technology, variation_combined, variance_coverage=0.0)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "variation",
        [
            VariationModel.intra_random_only(0.03),
            VariationModel.inter_only(0.03),
            VariationModel.combined(),
        ],
        ids=["intra", "inter", "combined"],
    )
    def test_stage_moments_match_monte_carlo(self, technology, variation):
        block = random_logic_block(
            "blk", n_gates=60, depth=10, n_inputs=8, n_outputs=5, seed=11
        )
        stage = PipelineStage(name="blk", netlist=block, flipflop=FlipFlopTiming())
        analyzer = StatisticalTimingAnalyzer(technology, variation)
        form = analyzer.stage_delay(stage.netlist, stage.flipflop, stage.register_position)
        engine = MonteCarloEngine(variation, technology=technology, n_samples=4000, seed=3)
        result = engine.run_stage(stage)
        assert form.mean == pytest.approx(result.mean, rel=0.02)
        # Sigma accuracy is regime dependent: excellent when correlation
        # dominates, but the Clark reduction over many independent
        # near-critical paths underestimates sigma (a known bias of
        # first-order canonical SSTA), so allow a wider band.
        assert form.sigma == pytest.approx(result.std, rel=0.40)

    def test_stage_correlation_regimes(self, technology):
        """Stage delay correlations: ~0 intra-only, ~1 inter-only."""
        chain_a = inverter_chain(6, name="a")
        chain_b = inverter_chain(6, name="b")
        for variation, expected in [
            (VariationModel.intra_random_only(0.03), 0.0),
            (VariationModel.inter_only(0.03), 1.0),
        ]:
            analyzer = StatisticalTimingAnalyzer(technology, variation)
            form_a = analyzer.combinational_delay(chain_a)
            form_b = analyzer.combinational_delay(chain_b)
            assert form_a.correlation(form_b) == pytest.approx(expected, abs=1e-6)

    def test_combined_variation_gives_partial_correlation(self, technology):
        chain_a = inverter_chain(6, name="a")
        chain_a.auto_place((0.0, 0.0, 0.3, 1.0))
        chain_b = inverter_chain(6, name="b")
        chain_b.auto_place((0.7, 0.0, 1.0, 1.0))
        analyzer = StatisticalTimingAnalyzer(technology, VariationModel.combined())
        rho = analyzer.combinational_delay(chain_a).correlation(
            analyzer.combinational_delay(chain_b)
        )
        assert 0.0 < rho < 1.0

    def test_correlation_matrix_properties(self, technology, variation_combined):
        analyzer = StatisticalTimingAnalyzer(technology, variation_combined)
        forms = [
            analyzer.combinational_delay(inverter_chain(5, name=f"c{i}"))
            for i in range(3)
        ]
        matrix = analyzer.correlation_matrix(forms)
        assert np.allclose(np.diag(matrix), 1.0)
        assert np.allclose(matrix, matrix.T)
        assert np.all(np.abs(matrix) <= 1.0 + 1e-12)
