"""Tests for repro.timing.sta."""

import numpy as np
import pytest

from repro.circuit.generators import inverter_chain
from repro.circuit.netlist import Netlist
from repro.timing.sta import (
    arrival_times,
    critical_path,
    max_delay,
    required_times,
    slacks,
)


def build_two_path_block() -> Netlist:
    """Two paths of different lengths reconverging on one output."""
    netlist = Netlist("two_path")
    netlist.add_primary_input("a")
    netlist.add_primary_input("b")
    netlist.add_gate("long1", "INV", ["a"])
    netlist.add_gate("long2", "INV", ["long1"])
    netlist.add_gate("long3", "INV", ["long2"])
    netlist.add_gate("short1", "INV", ["b"])
    netlist.add_gate("out", "NAND2", ["long3", "short1"])
    netlist.mark_primary_output("out")
    return netlist


class TestArrivalTimes:
    def test_chain_arrivals_are_cumulative(self):
        chain = inverter_chain(4)
        delays = np.ones(4)
        arrivals = arrival_times(chain, delays)
        assert np.allclose(arrivals, [1.0, 2.0, 3.0, 4.0])

    def test_max_over_fanins(self):
        netlist = build_two_path_block()
        index = netlist.gate_index()
        delays = np.ones(netlist.n_gates)
        arrivals = arrival_times(netlist, delays)
        assert arrivals[index["out"]] == pytest.approx(4.0)

    def test_vectorised_matches_scalar(self):
        netlist = build_two_path_block()
        rng = np.random.default_rng(0)
        delays = rng.uniform(0.5, 2.0, size=(8, netlist.n_gates))
        batched = arrival_times(netlist, delays)
        for row in range(8):
            assert np.allclose(batched[row], arrival_times(netlist, delays[row]))

    def test_shape_validation(self):
        netlist = build_two_path_block()
        with pytest.raises(ValueError):
            arrival_times(netlist, np.ones(3))
        with pytest.raises(ValueError):
            arrival_times(netlist, np.ones((2, 2, netlist.n_gates)))


class TestMaxDelayAndPaths:
    def test_max_delay_uses_primary_outputs(self):
        netlist = build_two_path_block()
        delays = np.ones(netlist.n_gates)
        assert max_delay(netlist, delays) == pytest.approx(4.0)

    def test_max_delay_vectorised(self):
        netlist = build_two_path_block()
        delays = np.ones((5, netlist.n_gates))
        result = max_delay(netlist, delays)
        assert result.shape == (5,)
        assert np.allclose(result, 4.0)

    def test_critical_path_follows_long_branch(self):
        netlist = build_two_path_block()
        delays = np.ones(netlist.n_gates)
        path = critical_path(netlist, delays)
        assert path == ["long1", "long2", "long3", "out"]

    def test_critical_path_switches_with_delays(self):
        netlist = build_two_path_block()
        index = netlist.gate_index()
        delays = np.ones(netlist.n_gates)
        delays[index["short1"]] = 10.0
        path = critical_path(netlist, delays)
        assert path == ["short1", "out"]

    def test_critical_path_rejects_batched_delays(self):
        netlist = build_two_path_block()
        with pytest.raises(ValueError):
            critical_path(netlist, np.ones((2, netlist.n_gates)))


class TestRequiredAndSlack:
    def test_required_at_output_equals_target(self):
        netlist = build_two_path_block()
        index = netlist.gate_index()
        delays = np.ones(netlist.n_gates)
        required = required_times(netlist, delays, target=5.0)
        assert required[index["out"]] == pytest.approx(5.0)

    def test_required_propagates_backwards(self):
        netlist = build_two_path_block()
        index = netlist.gate_index()
        delays = np.ones(netlist.n_gates)
        required = required_times(netlist, delays, target=5.0)
        assert required[index["long3"]] == pytest.approx(4.0)
        assert required[index["long1"]] == pytest.approx(2.0)

    def test_slack_identifies_critical_gates(self):
        netlist = build_two_path_block()
        index = netlist.gate_index()
        delays = np.ones(netlist.n_gates)
        slack = slacks(netlist, delays, target=4.0)
        assert slack[index["long2"]] == pytest.approx(0.0)
        assert slack[index["short1"]] == pytest.approx(2.0)

    def test_negative_slack_when_target_missed(self):
        netlist = build_two_path_block()
        delays = np.ones(netlist.n_gates)
        slack = slacks(netlist, delays, target=3.0)
        assert slack.min() == pytest.approx(-1.0)

    def test_required_rejects_batched_delays(self):
        netlist = build_two_path_block()
        with pytest.raises(ValueError):
            required_times(netlist, np.ones((2, netlist.n_gates)), target=1.0)
