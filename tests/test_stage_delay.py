"""Tests for repro.core.stage_delay."""

import numpy as np
import pytest

from repro.core.stage_delay import StageDelayDistribution


class TestConstruction:
    def test_from_samples(self, rng):
        samples = rng.normal(200e-12, 10e-12, size=20000)
        dist = StageDelayDistribution.from_samples(samples, name="s0")
        assert dist.mean == pytest.approx(200e-12, rel=0.01)
        assert dist.std == pytest.approx(10e-12, rel=0.05)
        assert dist.name == "s0"

    def test_from_samples_requires_enough_data(self):
        with pytest.raises(ValueError):
            StageDelayDistribution.from_samples(np.array([1.0]))

    def test_from_canonical(self):
        class FakeForm:
            mean = 150e-12
            sigma = 7e-12

        dist = StageDelayDistribution.from_canonical(FakeForm(), name="x")
        assert dist.mean == pytest.approx(150e-12)
        assert dist.std == pytest.approx(7e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            StageDelayDistribution(-1.0, 1.0)
        with pytest.raises(ValueError):
            StageDelayDistribution(1.0, -1.0)


class TestQueries:
    def test_variability(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        assert dist.variability == pytest.approx(0.05)
        assert StageDelayDistribution(0.0, 0.0).variability == 0.0

    def test_yield_at_mean_is_half(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        assert dist.yield_at(200e-12) == pytest.approx(0.5)

    def test_yield_monotonic_in_target(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        targets = np.linspace(150e-12, 250e-12, 11)
        yields = [dist.yield_at(t) for t in targets]
        assert yields == sorted(yields)

    def test_deterministic_stage_yield_is_step(self):
        dist = StageDelayDistribution(200e-12, 0.0)
        assert dist.yield_at(199e-12) == 0.0
        assert dist.yield_at(201e-12) == 1.0

    def test_delay_at_yield_inverts_yield_at(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        delay = dist.delay_at_yield(0.9)
        assert dist.yield_at(delay) == pytest.approx(0.9)

    def test_delay_at_yield_validation(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        with pytest.raises(ValueError):
            dist.delay_at_yield(0.0)
        with pytest.raises(ValueError):
            dist.delay_at_yield(1.0)

    def test_pdf_integrates_to_one(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        grid = np.linspace(100e-12, 300e-12, 4001)
        total = np.trapezoid(dist.pdf(grid), grid)
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_pdf_requires_positive_sigma(self):
        with pytest.raises(ValueError):
            StageDelayDistribution(1.0, 0.0).pdf(1.0)

    def test_scaled_preserves_variability_by_default(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        scaled = dist.scaled(0.8)
        assert scaled.variability == pytest.approx(dist.variability)

    def test_scaled_with_explicit_std_factor(self):
        dist = StageDelayDistribution(200e-12, 10e-12)
        scaled = dist.scaled(1.0, std_factor=2.0)
        assert scaled.mean == pytest.approx(dist.mean)
        assert scaled.std == pytest.approx(2.0 * dist.std)
