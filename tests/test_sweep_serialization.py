"""Loss-free JSON round trips for sweep results.

The study server streams :class:`SweepPoint` / :class:`PointFailure` /
:class:`ExecutionTrace` over the wire and clients fold them back into a
:class:`SweepResult`, so ``from_json(to_json(result))`` must compare equal
in every observable way -- points (specs and report samples included),
structured failures and the execution trace.
"""

from __future__ import annotations

import json

import pytest

from repro.api.spec import (
    AnalysisSpec,
    DesignSpec,
    DesignStudySpec,
    ExecutionPolicy,
    PipelineSpec,
    StudySpec,
)
from repro.api.session import Session
from repro.api.sweep import ScenarioSweep, SweepPoint, SweepResult, run_sweep
from repro.robust.failures import ExecutionTrace, PointFailure

BASE = StudySpec(
    pipeline=PipelineSpec(n_stages=2),
    analysis=AnalysisSpec(n_samples=200, seed=9),
)


@pytest.fixture(scope="module")
def sweep_result() -> SweepResult:
    return run_sweep(
        BASE, {"analysis.n_samples": [100, 150, 200]}, session=Session()
    )


class TestSweepPointRoundTrip:
    def test_point_round_trips_through_json(self, sweep_result):
        point = sweep_result[0]
        back = SweepPoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert back == point
        assert back.spec == point.spec
        assert back.report == point.report
        assert back.coords == point.coords

    def test_design_point_round_trips(self):
        base = DesignStudySpec(
            pipeline=PipelineSpec(n_stages=3),
            design=DesignSpec(),
            validation=AnalysisSpec(n_samples=150, seed=4),
        )
        result = run_sweep(
            base, {"design.yield_target": [0.85, 0.9]}, session=Session()
        )
        for point in result:
            back = SweepPoint.from_dict(json.loads(json.dumps(point.to_dict())))
            assert back == point


class TestFailureAndTraceRoundTrip:
    def test_point_failure_round_trips_without_live_exception(self):
        failure = PointFailure(
            index=3,
            coords=(("analysis.n_samples", 100), ("analysis.seed", 5)),
            error_type="ValueError",
            message="synthetic",
            traceback="Traceback (most recent call last): ...",
            attempts=2,
            elapsed=0.25,
            exception=ValueError("synthetic"),
        )
        back = PointFailure.from_dict(json.loads(json.dumps(failure.to_dict())))
        assert back == failure  # exception excluded from equality
        assert back.exception is None
        assert back.coords == failure.coords

    def test_execution_trace_round_trips(self):
        trace = ExecutionTrace(
            pool_kind="process",
            fallback_reason=None,
            n_jobs=4,
            n_points=7,
            n_completed=5,
            n_failed=2,
            n_retries=3,
            n_timeouts=1,
            checkpoint_hits=2,
            checkpoint_writes=5,
            deadline_hit=True,
            elapsed=1.5,
        )
        back = ExecutionTrace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert back == trace

    def test_execution_trace_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown ExecutionTrace field"):
            ExecutionTrace.from_dict({"n_points": 1, "mystery": 2})


class TestSweepResultRoundTrip:
    def test_full_result_round_trips(self, sweep_result):
        back = SweepResult.from_json(sweep_result.to_json())
        assert len(back) == len(sweep_result)
        assert list(back) == list(sweep_result)
        assert back.failures == sweep_result.failures
        assert back.trace == sweep_result.trace
        assert back.to_records() == sweep_result.to_records()

    def test_partial_result_round_trips(self):
        # An unregistered backend passes spec validation but fails at
        # resolution time -> one structured failure alongside one point.
        result = run_sweep(
            BASE,
            {"analysis.backend": ["montecarlo", "no-such-backend"]},
            session=Session(),
            policy=ExecutionPolicy(max_retries=0, backoff_base=0.0),
        )
        assert len(result.points) == 1 and len(result.failures) == 1
        back = SweepResult.from_json(result.to_json())
        assert list(back) == list(result)
        assert back.failures == result.failures
        assert back.trace.deterministic_dict() == result.trace.deterministic_dict()

    def test_json_text_is_plain_json(self, sweep_result):
        payload = json.loads(sweep_result.to_json())
        assert set(payload) == {"points", "failures", "trace"}
        assert payload["trace"]["n_completed"] == len(sweep_result)
