"""Tests for repro.process.technology."""

import pytest

from repro.process.technology import Technology, default_technology


class TestTechnologyConstruction:
    def test_default_is_valid(self):
        tech = default_technology()
        assert tech.vdd > tech.vth0 > 0.0
        assert tech.alpha > 0.0

    def test_gate_overdrive(self):
        tech = Technology(vdd=1.0, vth0=0.3)
        assert tech.gate_overdrive == pytest.approx(0.7)

    def test_tau_is_rc_product(self):
        tech = default_technology()
        assert tech.tau == pytest.approx(tech.r_unit * tech.c_unit)
        assert tech.tau_ps == pytest.approx(tech.tau * 1e12)

    def test_rejects_nonpositive_vdd(self):
        with pytest.raises(ValueError):
            Technology(vdd=0.0)

    def test_rejects_vth_above_vdd(self):
        with pytest.raises(ValueError):
            Technology(vdd=1.0, vth0=1.1)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            Technology(alpha=-1.0)

    def test_rejects_nonpositive_geometry(self):
        with pytest.raises(ValueError):
            Technology(lmin=0.0)
        with pytest.raises(ValueError):
            Technology(wmin=-1.0)

    def test_rejects_nonpositive_electrical_constants(self):
        with pytest.raises(ValueError):
            Technology(r_unit=0.0)
        with pytest.raises(ValueError):
            Technology(c_unit=-1e-15)


class TestDriveFactor:
    def test_nominal_is_unity(self):
        tech = default_technology()
        assert tech.drive_factor(tech.vth0) == pytest.approx(1.0)

    def test_higher_vth_is_slower(self):
        tech = default_technology()
        assert tech.drive_factor(tech.vth0 + 0.05) > 1.0

    def test_lower_vth_is_faster(self):
        tech = default_technology()
        assert tech.drive_factor(tech.vth0 - 0.05) < 1.0

    def test_longer_channel_is_slower(self):
        tech = default_technology()
        factor = tech.drive_factor(tech.vth0, length=1.2 * tech.lmin)
        assert factor == pytest.approx(1.2)

    def test_monotonic_in_vth(self):
        tech = default_technology()
        factors = [tech.drive_factor(v) for v in (0.15, 0.20, 0.25, 0.30)]
        assert factors == sorted(factors)

    def test_rejects_vth_at_supply(self):
        tech = default_technology()
        with pytest.raises(ValueError):
            tech.drive_factor(tech.vdd)

    def test_rejects_nonpositive_length(self):
        tech = default_technology()
        with pytest.raises(ValueError):
            tech.drive_factor(tech.vth0, length=0.0)


class TestScaled:
    def test_scaled_overrides_field(self):
        tech = default_technology()
        faster = tech.scaled(r_unit=tech.r_unit / 2)
        assert faster.r_unit == pytest.approx(tech.r_unit / 2)
        assert faster.c_unit == tech.c_unit

    def test_scaled_rejects_unknown_field(self):
        tech = default_technology()
        with pytest.raises(TypeError):
            tech.scaled(not_a_field=1.0)

    def test_scaled_returns_new_instance(self):
        tech = default_technology()
        assert tech.scaled(vdd=1.1) is not tech
