"""Property tests for incremental STA and the threaded kernel tier.

The incremental engine (:mod:`repro.timing.incremental`) claims *bit*
identity with the full kernels -- not approximate agreement -- because its
early cutoff only fires when a recomputed value equals the stored one
exactly.  Every assertion here is therefore ``np.array_equal`` (or ``==``),
never ``allclose``: a single ulp of drift in arrivals, required times,
loads or delays is a bug, and would also break the sizers' guarantee that
``incremental=True`` and ``incremental=False`` produce identical results.

The threaded kernel tier is exercised with a *forced* two-worker config so
the chunked code paths run even on single-core CI runners; speedup floors
live in the perf benchmarks, correctness lives here.
"""

import numpy as np
import pytest

from repro.circuit.generators import random_logic_block
from repro.optimize.greedy import GreedySizer
from repro.optimize.lagrangian import LagrangianSizer
from repro.pipeline.stage import PipelineStage
from repro.process.technology import default_technology
from repro.process.variation import VariationModel
from repro.timing.delay_model import GateDelayModel
from repro.timing.incremental import IncrementalTimer, SizingState
from repro.timing.kernels import (
    ENV_KERNEL,
    ENV_THREADS,
    KernelConfig,
    default_config,
    resolve_config,
    split_rows,
)
from repro.timing.ssta import StatisticalTimingAnalyzer
from repro.timing.sta import arrival_times, critical_path, max_delay, required_times

TECH = default_technology()
MODEL = GateDelayModel(TECH)

# Forced two-worker config: runs the chunked paths regardless of core count.
FORCED_THREADED = KernelConfig(kernel="threaded", threads=2, min_bytes=1, min_rows=1)


def make_block(seed: int, n_gates: int = 220, n_outputs: int = 5):
    """A reconvergent random DAG (random_logic re-uses fanin gates freely)."""
    return random_logic_block(
        f"blk{seed}",
        n_gates=n_gates,
        depth=max(4, n_gates // 20),
        n_inputs=7,
        n_outputs=n_outputs,
        seed=seed,
    )


# ----------------------------------------------------------------------
# IncrementalTimer: bit identity under randomized update sequences
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 7, 23, 91])
def test_incremental_timer_matches_full_sta(seed):
    block = make_block(seed)
    rng = np.random.default_rng(seed + 1000)
    delays = MODEL.nominal_delays(block, block.sizes())
    timer = IncrementalTimer(block, delays)
    target = 1.1 * timer.worst_arrival()
    for round_index in range(12):
        count = int(rng.integers(1, 15))
        gate_ids = rng.choice(block.n_gates, size=count, replace=False)
        delays = delays.copy()
        delays[gate_ids] *= rng.uniform(0.5, 1.8, size=count)
        timer.update_delays(gate_ids, delays[gate_ids])
        assert np.array_equal(timer.arrivals(), arrival_times(block, delays))
        assert timer.critical_path() == critical_path(block, delays)
        assert np.array_equal(
            timer.required(target), required_times(block, delays, target)
        )
    # The whole point: far fewer gates recomputed than 12 full passes.
    # (Wide cones may adaptively bail out to the full kernel -- that counts
    # as a full propagation -- but the sparse path must fire too and total
    # work must stay well below 12 full passes.)
    assert timer.incremental_propagations > 0
    assert timer.gates_recomputed < 12 * block.n_gates


def test_noop_invalidation_is_exact_and_cheap():
    block = make_block(5)
    delays = MODEL.nominal_delays(block, block.sizes())
    timer = IncrementalTimer(block, delays)
    before = timer.arrivals().copy()
    recomputed = timer.gates_recomputed
    # Invalidating without a delay change must re-derive identical values
    # and cut off at the frontier (no change ever propagates).
    timer.invalidate(np.arange(0, block.n_gates, 3))
    assert np.array_equal(timer.arrivals(), before)
    assert timer.gates_changed == 0
    assert timer.gates_recomputed > recomputed  # the dirty set was re-checked


def test_update_delays_diffing_skips_equal_values():
    block = make_block(6)
    delays = MODEL.nominal_delays(block, block.sizes())
    timer = IncrementalTimer(block, delays)
    timer.arrivals()
    # Writing the same values is a no-op: no dirty gates, no recompute.
    recomputed = timer.gates_recomputed
    timer.update_delays(np.arange(10), delays[:10])
    assert timer.gates_recomputed == recomputed
    assert np.array_equal(timer.arrivals(), arrival_times(block, delays))


def test_set_delays_full_replacement_matches():
    block = make_block(8)
    rng = np.random.default_rng(42)
    delays = MODEL.nominal_delays(block, block.sizes())
    timer = IncrementalTimer(block, delays)
    timer.arrivals()
    new = delays * rng.uniform(0.6, 1.5, size=block.n_gates)
    timer.set_delays(new)
    assert np.array_equal(timer.arrivals(), arrival_times(block, new))
    assert timer.critical_path() == critical_path(block, new)


def test_required_tracks_delay_updates_incrementally():
    block = make_block(13)
    rng = np.random.default_rng(77)
    delays = MODEL.nominal_delays(block, block.sizes())
    timer = IncrementalTimer(block, delays)
    target = 1.2 * timer.worst_arrival()
    assert np.array_equal(
        timer.required(target), required_times(block, delays, target)
    )
    for _ in range(8):
        gate_ids = rng.choice(block.n_gates, size=6, replace=False)
        delays = delays.copy()
        delays[gate_ids] *= rng.uniform(0.7, 1.4, size=6)
        timer.update_delays(gate_ids, delays[gate_ids])
        assert np.array_equal(
            timer.required(target), required_times(block, delays, target)
        )
    # Changing the target forces (and gets) a consistent full rebuild.
    other = 1.5 * target
    assert np.array_equal(
        timer.required(other), required_times(block, delays, other)
    )


def test_invalidate_rejects_out_of_range_ids():
    block = make_block(2, n_gates=40)
    timer = IncrementalTimer(block, MODEL.nominal_delays(block, block.sizes()))
    with pytest.raises(IndexError):
        timer.invalidate([block.n_gates])
    with pytest.raises(IndexError):
        timer.invalidate([-1])


# ----------------------------------------------------------------------
# SizingState: loads/delays/arrivals identical to from-scratch evaluation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [1, 17])
def test_sizing_state_resize_matches_reference(seed):
    block = make_block(seed)
    state = SizingState(block, TECH)
    rng = np.random.default_rng(seed + 500)
    for _ in range(25):
        position = int(rng.integers(0, block.n_gates))
        state.resize(position, float(rng.uniform(1.0, 9.0)))
        assert np.array_equal(state.loads, block.load_capacitances(state.sizes))
        assert np.array_equal(
            state.delays, MODEL.nominal_delays(block, state.sizes)
        )
        assert np.array_equal(state.arrivals(), arrival_times(block, state.delays))
    assert state.total_area() == block.total_area(state.sizes)


@pytest.mark.parametrize("fraction", [0.02, 0.95])
def test_sizing_state_set_sizes_sparse_and_dense(fraction):
    block = make_block(3)
    state = SizingState(block, TECH)
    rng = np.random.default_rng(99)
    new_sizes = state.sizes.copy()
    count = max(1, int(block.n_gates * fraction))
    gate_ids = rng.choice(block.n_gates, size=count, replace=False)
    new_sizes[gate_ids] = rng.uniform(1.0, 10.0, size=count)
    state.set_sizes(new_sizes)
    assert np.array_equal(state.loads, block.load_capacitances(state.sizes))
    assert np.array_equal(state.delays, MODEL.nominal_delays(block, state.sizes))
    assert np.array_equal(state.arrivals(), arrival_times(block, state.delays))
    target = 1.05 * state.worst_arrival()
    assert np.array_equal(
        state.required(target), required_times(block, state.delays, target)
    )


def test_sizing_state_rejects_bad_sizes():
    block = make_block(4, n_gates=30)
    state = SizingState(block, TECH)
    with pytest.raises(ValueError):
        state.resize(0, 0.0)
    with pytest.raises(ValueError):
        state.set_sizes(np.zeros(block.n_gates))
    with pytest.raises(ValueError):
        state.set_sizes(np.ones(block.n_gates + 1))


# ----------------------------------------------------------------------
# Sizers: incremental=True must reproduce incremental=False exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "sizer_cls,options",
    [
        (GreedySizer, {"max_moves": 50, "sigma_refresh": 20}),
        (LagrangianSizer, {"max_outer": 5}),
    ],
)
def test_sizer_incremental_matches_full(sizer_cls, options):
    variation = VariationModel()
    block = make_block(9, n_gates=260)
    stage = PipelineStage(name="s", netlist=block)
    reference = sizer_cls(TECH, variation, **options)
    target = reference.stage_distribution(stage).delay_at_yield(0.9) * 0.9
    result_inc = sizer_cls(TECH, variation, incremental=True, **options).size_stage(
        stage, target, 0.9, apply=False
    )
    result_full = sizer_cls(TECH, variation, incremental=False, **options).size_stage(
        stage, target, 0.9, apply=False
    )
    assert np.array_equal(result_inc.sizes, result_full.sizes)
    assert result_inc.iterations == result_full.iterations
    assert result_inc.area == result_full.area
    assert result_inc.achieved_yield == result_full.achieved_yield


# ----------------------------------------------------------------------
# Threaded kernel tier: chunked execution is bit-identical
# ----------------------------------------------------------------------
def test_threaded_2d_arrivals_bit_identical():
    block = make_block(11, n_gates=300)
    rng = np.random.default_rng(3)
    nominal = MODEL.nominal_delays(block, block.sizes())
    batch = nominal[None, :] * rng.uniform(0.7, 1.4, size=(96, block.n_gates))
    reference = arrival_times(block, batch, kernel="vectorized")
    assert np.array_equal(arrival_times(block, batch, kernel=FORCED_THREADED), reference)
    assert np.array_equal(arrival_times(block, batch), reference)  # auto
    assert np.array_equal(
        max_delay(block, batch, kernel=FORCED_THREADED),
        max_delay(block, batch),
    )


def test_threaded_ssta_components_bit_identical():
    block = make_block(12, n_gates=300)
    variation = VariationModel()
    reference = StatisticalTimingAnalyzer(TECH, variation, grid_size=8)
    threaded = StatisticalTimingAnalyzer(
        TECH, variation, grid_size=8, kernel=FORCED_THREADED
    )
    for fast, slow in zip(
        threaded.arrival_components(block), reference.arrival_components(block)
    ):
        assert np.array_equal(fast, slow)
    fast_form = threaded.combinational_delay(block)
    slow_form = reference.combinational_delay(block)
    assert fast_form.mean == slow_form.mean
    assert float(fast_form.sigma) == float(slow_form.sigma)


# ----------------------------------------------------------------------
# KernelConfig: selection rules and serialisation
# ----------------------------------------------------------------------
def test_kernel_config_resolution_rules():
    assert KernelConfig(kernel="vectorized", threads=8).resolve(1000, 8000) == 1
    forced = KernelConfig(kernel="threaded", threads=3)
    assert forced.resolve(1000, 8000) == 3
    assert forced.resolve(2, 8) == 2  # never more workers than rows
    assert forced.resolve(1, 8) == 1  # single row stays sequential
    auto = KernelConfig(kernel="auto", threads=4, min_rows=64, min_bytes=1 << 20)
    assert auto.resolve(32, 1 << 20) == 1  # too few rows
    assert auto.resolve(128, 16) == 1  # too small a problem
    assert auto.resolve(128, 1 << 16) == 4  # big enough on both axes


def test_kernel_config_validation():
    with pytest.raises(ValueError):
        KernelConfig(kernel="gpu")
    with pytest.raises(ValueError):
        KernelConfig(threads=0)
    with pytest.raises(TypeError):
        resolve_config(3.14)


def test_kernel_config_json_round_trip():
    config = KernelConfig(kernel="threaded", threads=2, min_bytes=64, min_rows=8)
    assert KernelConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ValueError):
        KernelConfig.from_dict({"kernel": "auto", "bogus": 1})


def test_kernel_config_env_defaults(monkeypatch):
    monkeypatch.setenv(ENV_KERNEL, "threaded")
    monkeypatch.setenv(ENV_THREADS, "5")
    config = default_config()
    assert config.kernel == "threaded"
    assert config.resolved_threads() == 5
    monkeypatch.delenv(ENV_KERNEL)
    assert default_config().kernel == "auto"
    assert resolve_config(None) == default_config()
    assert resolve_config("vectorized").kernel == "vectorized"
    assert resolve_config(config) is config


def test_split_rows_partitions_exactly():
    spans = split_rows(10, 3)
    assert spans[0][0] == 0 and spans[-1][1] == 10
    covered = [i for lo, hi in spans for i in range(lo, hi)]
    assert covered == list(range(10))
    assert split_rows(2, 8) == [(0, 1), (1, 2)]
    assert split_rows(5, 1) == [(0, 5)]
