"""Property-based tests for the vectorized (compiled-schedule) timing kernels.

The seed's gate-at-a-time implementations survive in
:mod:`repro.timing.reference`; these tests assert the level-parallel kernels
in :mod:`repro.timing.sta` / :mod:`repro.timing.ssta` match them to 1e-12
relative (of the result's own scale) on random DAGs, and exercise the
structural edge cases the kernels must survive: gates with no gate fanins,
single-gate netlists, and netlists with no marked primary outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.generators import inverter_chain, random_logic_block
from repro.circuit.netlist import Netlist
from repro.timing.delay_model import GateDelayModel
from repro.timing.reference import (
    arrival_components_reference,
    arrival_times_reference,
    correlation_matrix_reference,
    required_times_reference,
)
from repro.timing.ssta import StatisticalTimingAnalyzer
from repro.timing.sta import arrival_times, critical_path, max_delay, required_times
from repro.process.technology import default_technology
from repro.process.variation import VariationModel


REL = 1e-12


def assert_matches(actual: np.ndarray, expected: np.ndarray) -> None:
    """Assert two kernel results agree to 1e-12 of the result's scale."""
    scale = float(np.abs(expected).max()) if expected.size else 1.0
    np.testing.assert_allclose(actual, expected, rtol=REL, atol=REL * max(scale, 1.0e-300))


def random_block(n_gates: int, seed: int, n_outputs: int = 3) -> Netlist:
    depth = max(2, n_gates // 5)
    return random_logic_block(
        "block",
        n_gates=n_gates,
        depth=depth,
        n_inputs=5,
        n_outputs=n_outputs,
        seed=seed,
    )


class TestDeterministicKernels:
    @given(
        st.integers(min_value=5, max_value=80),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_arrival_times_1d_matches_reference(self, n_gates, seed):
        block = random_block(n_gates, seed)
        delays = GateDelayModel(default_technology()).nominal_delays(block)
        assert_matches(arrival_times(block, delays), arrival_times_reference(block, delays))

    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_arrival_times_2d_matches_reference(self, n_gates, seed, n_samples):
        block = random_block(n_gates, seed)
        rng = np.random.default_rng(seed)
        delays = rng.uniform(1e-12, 1e-10, size=(n_samples, block.n_gates))
        assert_matches(arrival_times(block, delays), arrival_times_reference(block, delays))

    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_required_times_matches_reference(self, n_gates, seed, target_scale):
        block = random_block(n_gates, seed)
        delays = GateDelayModel(default_technology()).nominal_delays(block)
        target = target_scale * float(max_delay(block, delays))
        assert_matches(
            required_times(block, delays, target),
            required_times_reference(block, delays, target),
        )

    @given(
        st.integers(min_value=5, max_value=60),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_critical_path_accepts_precomputed_arrivals(self, n_gates, seed):
        block = random_block(n_gates, seed)
        delays = GateDelayModel(default_technology()).nominal_delays(block)
        arrivals = arrival_times(block, delays)
        assert critical_path(block, delays, arrivals=arrivals) == critical_path(
            block, delays
        )


class TestStatisticalKernels:
    @given(
        st.integers(min_value=5, max_value=50),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_arrival_components_match_reference(self, n_gates, seed):
        block = random_block(n_gates, seed)
        analyzer = StatisticalTimingAnalyzer(
            default_technology(), VariationModel.combined()
        )
        vec_mean, vec_sens, vec_rand = analyzer.arrival_components(block)
        ref_mean, ref_sens, ref_rand = arrival_components_reference(analyzer, block)
        assert_matches(vec_mean, ref_mean)
        assert_matches(vec_sens, ref_sens)
        assert_matches(vec_rand, ref_rand)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_correlation_matrix_matches_reference(self, n_stages, seed):
        analyzer = StatisticalTimingAnalyzer(
            default_technology(), VariationModel.combined()
        )
        forms = [
            analyzer.stage_delay(random_block(20, seed + index))
            for index in range(n_stages)
        ]
        matrix = analyzer.correlation_matrix(forms)
        assert_matches(matrix, correlation_matrix_reference(forms))
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)


class TestEdgeCases:
    def test_single_gate_netlist(self):
        netlist = Netlist("single")
        netlist.add_primary_input("a")
        netlist.add_gate("g", "INV", ["a"])
        netlist.mark_primary_output("g")
        delays = np.array([3.0])
        assert_matches(arrival_times(netlist, delays), np.array([3.0]))
        assert critical_path(netlist, delays) == ["g"]
        schedule = netlist.timing_schedule()
        assert schedule.n_levels == 1
        assert schedule.n_edges == 0

    def test_all_gates_empty_fanin(self):
        """Every gate driven only by primary inputs: one level, no edges."""
        netlist = Netlist("flat")
        netlist.add_primary_input("a")
        for index in range(4):
            netlist.add_gate(f"g{index}", "INV", ["a"])
        netlist.mark_primary_output("g0")
        delays = np.arange(1.0, 5.0)
        assert_matches(arrival_times(netlist, delays), delays)
        assert_matches(
            arrival_times(netlist, np.tile(delays, (3, 1))),
            np.tile(delays, (3, 1)),
        )
        required = required_times(netlist, delays, target=10.0)
        assert_matches(required, required_times_reference(netlist, delays, 10.0))

    def test_unmarked_outputs_fall_back_to_all_gates(self):
        netlist = Netlist("unmarked")
        netlist.add_primary_input("a")
        netlist.add_gate("g0", "INV", ["a"])
        netlist.add_gate("g1", "INV", ["g0"])
        delays = np.array([1.0, 2.0])
        assert max_delay(netlist, delays) == pytest.approx(3.0)
        assert critical_path(netlist, delays) == ["g0", "g1"]
        assert_matches(
            required_times(netlist, delays, target=3.0),
            required_times_reference(netlist, delays, 3.0),
        )

    def test_unmarked_outputs_ssta(self):
        netlist = Netlist("unmarked_ssta")
        netlist.add_primary_input("a")
        netlist.add_gate("g0", "INV", ["a"])
        netlist.add_gate("g1", "INV", ["g0"])
        analyzer = StatisticalTimingAnalyzer(
            default_technology(), VariationModel.combined()
        )
        form = analyzer.combinational_delay(netlist)
        ref_mean, _, _ = arrival_components_reference(analyzer, netlist)
        assert form.mean == pytest.approx(float(ref_mean.max()), rel=1e-12)

    def test_edge_free_netlist_loads_are_float(self):
        """bincount returns int64 for empty weighted input; loads must not."""
        chain = inverter_chain(1)
        loads = chain.load_capacitances()
        assert loads.dtype == np.float64
        assert loads[0] == pytest.approx(chain.default_output_load)

    def test_empty_netlist(self):
        netlist = Netlist("empty")
        netlist.add_primary_input("a")
        assert arrival_times(netlist, np.zeros(0)).shape == (0,)
        assert netlist.logic_depth() == 0
        assert netlist.timing_schedule().n_levels == 0

    def test_schedule_cache_reused_and_invalidated(self):
        netlist = inverter_chain(5)
        first = netlist.timing_schedule()
        assert netlist.timing_schedule() is first
        # Size mutations must not invalidate the compiled structure.
        netlist.set_sizes(2.0 * netlist.sizes())
        assert netlist.timing_schedule() is first
        # Structural edits must.
        netlist.add_gate("extra", "INV", ["inv4"])
        second = netlist.timing_schedule()
        assert second is not first
        assert second.version != first.version
        assert second.n_gates == 6

    def test_schedule_csr_matches_lists(self):
        block = random_block(40, seed=7)
        schedule = block.timing_schedule()
        fanins = block.fanin_indices()
        fanouts = block.fanout_indices()
        for gate_pos in range(block.n_gates):
            assert list(schedule.fanins_of(gate_pos)) == fanins[gate_pos]
            assert list(schedule.fanouts_of(gate_pos)) == fanouts[gate_pos]
        levels = block.levels()
        assert np.array_equal(levels, schedule.levels + 1)
        assert block.logic_depth() == schedule.n_levels
