"""Tests for repro.core.variability (paper section 3.1, Fig. 5)."""

import numpy as np
import pytest

from repro.core.stage_delay import StageDelayDistribution
from repro.core.variability import (
    GateVariability,
    normalized_series,
    pipeline_variability_fixed_total_depth,
    pipeline_variability_vs_stages,
    stage_variability_vs_logic_depth,
)


class TestGateVariability:
    def test_stage_distribution_moments(self):
        gate = GateVariability(mu=10e-12, sigma_random=1e-12, sigma_die=0.5e-12)
        stage = gate.stage_distribution(4)
        assert stage.mean == pytest.approx(40e-12)
        expected_var = 4 * (1e-12) ** 2 + 16 * (0.5e-12) ** 2
        assert stage.std == pytest.approx(expected_var**0.5)

    def test_stage_correlation_bounds(self):
        gate = GateVariability(mu=10e-12, sigma_random=1e-12, sigma_die=0.5e-12)
        rho = gate.stage_correlation(8)
        assert 0.0 < rho < 1.0

    def test_no_die_component_means_independent_stages(self):
        gate = GateVariability(mu=10e-12, sigma_random=1e-12)
        assert gate.stage_correlation(8) == pytest.approx(0.0)

    def test_only_die_component_means_perfect_correlation(self):
        gate = GateVariability(mu=10e-12, sigma_die=1e-12)
        assert gate.stage_correlation(8) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GateVariability(mu=0.0)
        with pytest.raises(ValueError):
            GateVariability(mu=1.0, sigma_random=-1.0)
        with pytest.raises(ValueError):
            GateVariability(mu=1.0).stage_distribution(0)


class TestFig5aLogicDepth:
    def test_random_only_variability_falls_with_depth(self):
        """Fig. 5(a): under random intra-die variation, deeper stages average out."""
        gate = GateVariability(mu=10e-12, sigma_random=1.5e-12)
        depths = [5, 10, 20, 40]
        series = stage_variability_vs_logic_depth(gate, depths)
        assert np.all(np.diff(series) < 0.0)
        # The cancellation is 1/sqrt(N): doubling depth cuts sigma/mu by sqrt(2).
        assert series[0] / series[1] == pytest.approx(np.sqrt(2.0), rel=1e-6)

    def test_correlated_variation_flattens_the_trend(self):
        """Fig. 5(a): with inter-die variation the depth dependence weakens."""
        random_only = GateVariability(mu=10e-12, sigma_random=1.5e-12)
        with_inter = GateVariability(mu=10e-12, sigma_random=1.5e-12, sigma_die=1.0e-12)
        depths = [5, 40]
        drop_random = stage_variability_vs_logic_depth(random_only, depths)
        drop_inter = stage_variability_vs_logic_depth(with_inter, depths)
        relative_drop_random = drop_random[1] / drop_random[0]
        relative_drop_inter = drop_inter[1] / drop_inter[0]
        assert relative_drop_inter > relative_drop_random

    def test_inter_only_variability_independent_of_depth(self):
        gate = GateVariability(mu=10e-12, sigma_die=1.0e-12)
        series = stage_variability_vs_logic_depth(gate, [5, 10, 20])
        assert np.allclose(series, series[0])


class TestFig5bStageCount:
    def test_variability_falls_with_stage_count(self):
        stage = StageDelayDistribution(200e-12, 10e-12)
        counts = [4, 8, 16, 32]
        series = pipeline_variability_vs_stages(stage, counts, correlation=0.0)
        assert np.all(np.diff(series) < 0.0)

    def test_correlation_weakens_the_stage_count_effect(self):
        """Fig. 5(b): higher correlation, flatter curve."""
        stage = StageDelayDistribution(200e-12, 10e-12)
        counts = [4, 32]
        independent = pipeline_variability_vs_stages(stage, counts, correlation=0.0)
        correlated = pipeline_variability_vs_stages(stage, counts, correlation=0.5)
        assert correlated[1] / correlated[0] > independent[1] / independent[0]

    def test_validation(self):
        stage = StageDelayDistribution(200e-12, 10e-12)
        with pytest.raises(ValueError):
            pipeline_variability_vs_stages(stage, [4], correlation=1.5)
        with pytest.raises(ValueError):
            pipeline_variability_vs_stages(stage, [0], correlation=0.0)


class TestFig5cFixedTotalDepth:
    def test_intra_only_variability_rises_with_stage_count(self):
        """Fig. 5(c): with only intra-die variation, more (shallower) stages hurt."""
        gate = GateVariability(mu=10e-12, sigma_random=1.5e-12)
        counts = [4, 8, 12, 24]
        series = pipeline_variability_fixed_total_depth(gate, 120, counts)
        assert series[-1] > series[0]

    def test_inter_dominated_variability_falls_with_stage_count(self):
        """Fig. 5(c): with dominant inter-die variation the trend reverses."""
        gate = GateVariability(mu=10e-12, sigma_random=0.5e-12, sigma_die=2.0e-12)
        counts = [4, 8, 12, 24]
        series = pipeline_variability_fixed_total_depth(gate, 120, counts)
        assert series[-1] < series[0]

    def test_stage_count_must_divide_total_depth(self):
        gate = GateVariability(mu=10e-12, sigma_random=1e-12)
        with pytest.raises(ValueError):
            pipeline_variability_fixed_total_depth(gate, 120, [7])

    def test_validation(self):
        gate = GateVariability(mu=10e-12, sigma_random=1e-12)
        with pytest.raises(ValueError):
            pipeline_variability_fixed_total_depth(gate, 0, [1])


class TestNormalizedSeries:
    def test_normalises_to_first_element(self):
        series = normalized_series(np.array([2.0, 1.0, 0.5]))
        assert series[0] == pytest.approx(1.0)
        assert series[-1] == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_series(np.array([]))
        with pytest.raises(ValueError):
            normalized_series(np.array([0.0, 1.0]))
