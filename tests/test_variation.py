"""Tests for repro.process.variation."""

import pytest

from repro.process.variation import VariationComponents, VariationModel


class TestVariationModel:
    def test_default_has_all_components(self):
        var = VariationModel()
        assert var.has_inter_die
        assert var.has_intra_random
        assert var.has_intra_systematic

    def test_intra_random_only_profile(self):
        var = VariationModel.intra_random_only()
        assert not var.has_inter_die
        assert var.has_intra_random
        assert not var.has_intra_systematic

    def test_inter_only_profile(self):
        var = VariationModel.inter_only(0.04)
        assert var.has_inter_die
        assert not var.has_intra_random
        assert not var.has_intra_systematic
        assert var.sigma_vth_inter == pytest.approx(0.04)

    def test_combined_profile(self):
        var = VariationModel.combined(sigma_vth_inter=0.02)
        assert var.has_inter_die and var.has_intra_random and var.has_intra_systematic

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariationModel(sigma_vth_inter=-0.01)

    def test_rejects_nonpositive_correlation_length(self):
        with pytest.raises(ValueError):
            VariationModel(correlation_length=0.0)

    def test_with_inter_sigma_changes_only_inter(self):
        var = VariationModel.combined()
        changed = var.with_inter_sigma(0.04)
        assert changed.sigma_vth_inter == pytest.approx(0.04)
        assert changed.sigma_vth_random == pytest.approx(var.sigma_vth_random)

    def test_with_inter_sigma_zero_drops_length_inter(self):
        var = VariationModel.combined()
        changed = var.with_inter_sigma(0.0)
        assert not changed.has_inter_die


class TestSizeScaling:
    def test_random_component_shrinks_with_size(self):
        var = VariationModel(sigma_vth_random=0.03)
        small = var.vth_components_for_size(1.0)
        large = var.vth_components_for_size(4.0)
        assert large.intra_random == pytest.approx(small.intra_random / 2.0)

    def test_inter_component_independent_of_size(self):
        var = VariationModel()
        assert var.vth_components_for_size(1.0).inter_die == pytest.approx(
            var.vth_components_for_size(9.0).inter_die
        )

    def test_total_is_quadrature_sum(self):
        components = VariationComponents(0.03, 0.04, 0.0)
        assert components.total == pytest.approx(0.05)

    def test_total_vth_sigma_matches_components(self):
        var = VariationModel()
        assert var.total_vth_sigma(2.0) == pytest.approx(
            var.vth_components_for_size(2.0).total
        )

    def test_rejects_nonpositive_size(self):
        var = VariationModel()
        with pytest.raises(ValueError):
            var.vth_components_for_size(0.0)
