"""Tests for repro.core.yield_model (paper section 2.3)."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.stage_delay import StageDelayDistribution
from repro.core.yield_model import (
    stage_yield_budget,
    target_delay_for_yield,
    yield_correlated,
    yield_from_samples,
    yield_independent,
)


def make_stages(means, stds):
    return [StageDelayDistribution(m, s) for m, s in zip(means, stds)]


class TestIndependentYield:
    def test_single_stage_matches_gaussian_cdf(self):
        stages = make_stages([200e-12], [10e-12])
        expected = float(norm.cdf(1.0))
        assert yield_independent(stages, 210e-12) == pytest.approx(expected)

    def test_product_form(self):
        stages = make_stages([200e-12, 190e-12], [10e-12, 5e-12])
        target = 205e-12
        expected = float(
            norm.cdf((205e-12 - 200e-12) / 10e-12)
            * norm.cdf((205e-12 - 190e-12) / 5e-12)
        )
        assert yield_independent(stages, target) == pytest.approx(expected)

    def test_equal_stages_paper_eq12_consistency(self):
        """N identical stages: pipeline yield is the stage yield to the Nth power."""
        stage = StageDelayDistribution(200e-12, 10e-12)
        target = 212e-12
        single = yield_independent([stage], target)
        assert yield_independent([stage] * 4, target) == pytest.approx(single**4)

    def test_deterministic_stage_handling(self):
        stages = [StageDelayDistribution(200e-12, 0.0), StageDelayDistribution(150e-12, 5e-12)]
        assert yield_independent(stages, 190e-12) == 0.0
        assert yield_independent(stages, 210e-12) == pytest.approx(
            yield_independent([stages[1]], 210e-12)
        )

    def test_impossible_target_is_zero(self):
        stages = make_stages([200e-12], [1e-12])
        assert yield_independent(stages, 100e-12) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            yield_independent([], 1.0)
        with pytest.raises(ValueError):
            yield_independent(make_stages([1.0], [0.1]), -1.0)

    def test_against_monte_carlo(self, rng):
        means = np.array([200e-12, 195e-12, 205e-12])
        stds = np.array([8e-12, 6e-12, 7e-12])
        stages = make_stages(means, stds)
        target = 212e-12
        samples = rng.normal(means, stds, size=(200000, 3)).max(axis=1)
        assert yield_independent(stages, target) == pytest.approx(
            (samples <= target).mean(), abs=0.01
        )


class TestCorrelatedYield:
    def test_reduces_to_independent_when_uncorrelated(self):
        stages = make_stages([200e-12, 195e-12, 205e-12], [8e-12, 6e-12, 7e-12])
        target = 214e-12
        independent = yield_independent(stages, target)
        correlated = yield_correlated(stages, target, np.eye(3))
        assert correlated == pytest.approx(independent, abs=0.02)

    def test_perfect_correlation_equals_worst_stage(self):
        stages = make_stages([200e-12, 180e-12], [10e-12, 10e-12])
        corr = np.ones((2, 2))
        target = 205e-12
        worst = stages[0].yield_at(target)
        assert yield_correlated(stages, target, corr) == pytest.approx(worst, abs=1e-6)

    def test_correlation_improves_yield(self):
        """At a tight target, correlated stages fail together, improving yield."""
        stages = make_stages([200e-12] * 5, [10e-12] * 5)
        corr = np.full((5, 5), 0.9)
        np.fill_diagonal(corr, 1.0)
        target = 208e-12
        assert yield_correlated(stages, target, corr) > yield_independent(stages, target)

    def test_against_monte_carlo(self, rng):
        means = np.full(4, 200e-12)
        stds = np.full(4, 10e-12)
        rho = 0.5
        corr = np.full((4, 4), rho)
        np.fill_diagonal(corr, 1.0)
        cov = corr * np.outer(stds, stds)
        samples = rng.multivariate_normal(means, cov, size=200000).max(axis=1)
        target = 215e-12
        stages = make_stages(means, stds)
        assert yield_correlated(stages, target, corr) == pytest.approx(
            (samples <= target).mean(), abs=0.015
        )


class TestSampleYieldAndInversion:
    def test_yield_from_samples(self):
        samples = np.array([1.0, 2.0, 3.0, 4.0])
        assert yield_from_samples(samples, 2.5) == pytest.approx(0.5)
        assert yield_from_samples(samples, 0.5) == 0.0
        assert yield_from_samples(samples, 5.0) == 1.0

    def test_yield_from_samples_validation(self):
        with pytest.raises(ValueError):
            yield_from_samples(np.array([]), 1.0)

    def test_target_delay_for_yield_inverts(self):
        stages = make_stages([200e-12] * 3, [10e-12] * 3)
        target = target_delay_for_yield(stages, 0.9)
        assert yield_correlated(stages, target) == pytest.approx(0.9, abs=1e-6)

    def test_target_delay_validation(self):
        with pytest.raises(ValueError):
            target_delay_for_yield(make_stages([1.0], [0.1]), 1.5)


class TestStageYieldBudget:
    def test_fig7_allocation(self):
        """The paper's 0.80 over 3 stages -> 0.9283 per stage."""
        assert stage_yield_budget(0.80, 3) == pytest.approx(0.9283, abs=2e-4)

    def test_single_stage_budget_is_pipeline_yield(self):
        assert stage_yield_budget(0.9, 1) == pytest.approx(0.9)

    def test_budget_to_pipeline_roundtrip(self):
        budget = stage_yield_budget(0.85, 5)
        assert budget**5 == pytest.approx(0.85)

    def test_validation(self):
        with pytest.raises(ValueError):
            stage_yield_budget(0.0, 3)
        with pytest.raises(ValueError):
            stage_yield_budget(0.9, 0)
